// Executable versions of §2's learning theory: VC dimensions of the
// three range spaces (Fig. 2 and the table in §2.2), unbounded
// VC-dimension of convex polygons, and γ-fat-shattering (Lemma 2.7).
#include <gtest/gtest.h>

#include <cmath>

#include "learning/fat_shattering.h"
#include "learning/shattering.h"
#include "learning/vc_dimension.h"

namespace sel {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<Point> Diamond4() {
  // 4 points in convex position with distinct extremes: shattered by
  // rectangles (Fig. 2 (i)).
  return {{0.5, 0.0}, {1.0, 0.5}, {0.5, 1.0}, {0.0, 0.5}};
}

std::vector<Point> OnCircle(int n, double jitter = 0.0) {
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * kPi * i / n + jitter;
    pts.push_back({0.5 + 0.45 * std::cos(a), 0.5 + 0.45 * std::sin(a)});
  }
  return pts;
}

// ---------- Boxes: VC-dim = 2d ----------

TEST(VcDimensionTest, RectanglesShatterDiamondOf4) {
  BoxFamily boxes;
  EXPECT_TRUE(IsShattered(boxes, Diamond4()));
}

TEST(VcDimensionTest, RectanglesCannotShatterAny5Points) {
  // Fig. 2 (ii): among any 5 points, the one not extreme in x or y is
  // trapped. Check several configurations.
  BoxFamily boxes;
  const std::vector<std::vector<Point>> configs = {
      {{0.1, 0.1}, {0.9, 0.1}, {0.9, 0.9}, {0.1, 0.9}, {0.5, 0.5}},
      OnCircle(5),
      {{0.2, 0.3}, {0.7, 0.1}, {0.9, 0.6}, {0.4, 0.9}, {0.5, 0.5}},
  };
  for (const auto& pts : configs) {
    EXPECT_FALSE(IsShattered(boxes, pts));
  }
}

TEST(VcDimensionTest, RectanglesVcDimIs4In2D) {
  BoxFamily boxes;
  // Ground set: diamond + extra interior/exterior points.
  std::vector<Point> ground = Diamond4();
  ground.push_back({0.5, 0.5});
  ground.push_back({0.2, 0.8});
  ground.push_back({0.8, 0.2});
  EXPECT_EQ(LargestShatteredSubset(boxes, ground, 6), 4);  // = 2d
}

TEST(VcDimensionTest, Intervals1DShatter2Not3) {
  BoxFamily boxes;
  std::vector<Point> two = {{0.2}, {0.8}};
  EXPECT_TRUE(IsShattered(boxes, two));
  std::vector<Point> three = {{0.2}, {0.5}, {0.8}};
  EXPECT_FALSE(IsShattered(boxes, three));  // {left, right} traps middle
}

TEST(VcDimensionTest, Boxes3DShatter6) {
  // VC-dim of boxes in R^3 is 6: the face centers of an octahedron work.
  BoxFamily boxes;
  std::vector<Point> pts = {{0.0, 0.5, 0.5}, {1.0, 0.5, 0.5},
                            {0.5, 0.0, 0.5}, {0.5, 1.0, 0.5},
                            {0.5, 0.5, 0.0}, {0.5, 0.5, 1.0}};
  EXPECT_TRUE(IsShattered(boxes, pts));
}

// ---------- Halfspaces: VC-dim = d + 1 ----------

TEST(VcDimensionTest, HalfspacesShatterTriangle) {
  HalfspaceFamily hs;
  std::vector<Point> tri = {{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}};
  EXPECT_TRUE(IsShattered(hs, tri));
}

TEST(VcDimensionTest, HalfspacesCannotShatter4In2D) {
  HalfspaceFamily hs;
  // Radon: any 4 points in the plane admit an unrealizable dichotomy.
  const std::vector<std::vector<Point>> configs = {
      {{0.1, 0.1}, {0.9, 0.1}, {0.9, 0.9}, {0.1, 0.9}},  // convex position
      {{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}, {0.5, 0.4}},  // one inside
      OnCircle(4, 0.3),
  };
  for (const auto& pts : configs) {
    EXPECT_FALSE(IsShattered(hs, pts));
  }
}

TEST(VcDimensionTest, HalfspacesVcDimIs3In2D) {
  HalfspaceFamily hs;
  std::vector<Point> ground = OnCircle(6);
  EXPECT_EQ(LargestShatteredSubset(hs, ground, 5), 3);  // = d + 1
}

TEST(VcDimensionTest, HalfspacesShatter4In3D) {
  HalfspaceFamily hs;
  std::vector<Point> tetra = {{0.2, 0.2, 0.2},
                              {0.8, 0.2, 0.2},
                              {0.5, 0.8, 0.2},
                              {0.5, 0.45, 0.8}};
  EXPECT_TRUE(IsShattered(hs, tetra));  // d + 1 = 4
}

// ---------- Balls: VC-dim <= d + 2 (discs: 3) ----------

TEST(VcDimensionTest, DiscsShatterTriangle) {
  BallFamily balls;
  std::vector<Point> tri = {{0.3, 0.3}, {0.7, 0.3}, {0.5, 0.65}};
  EXPECT_TRUE(IsShattered(balls, tri));
}

TEST(VcDimensionTest, DiscsCannotShatter5) {
  // VC-dim of discs in the plane is 3, certainly < 5 <= d + 2 + 1.
  BallFamily balls;
  EXPECT_FALSE(IsShattered(balls, OnCircle(5, 0.1)));
}

TEST(VcDimensionTest, DiscsRealizeComplementOfOnePointOnCircle) {
  // Unlike boxes, discs realize "all but one" dichotomies of co-circular
  // points — the classic reason their VC-dim exceeds naive bounds.
  BallFamily balls;
  const auto pts = OnCircle(4);
  for (uint32_t leave_out = 0; leave_out < 4; ++leave_out) {
    const uint32_t mask = 0xFu & ~(1u << leave_out);
    EXPECT_TRUE(balls.CanRealize(pts, mask)) << "leave out " << leave_out;
  }
}

TEST(VcDimensionTest, BallVcDimBoundedByDPlus2In2D) {
  BallFamily balls;
  std::vector<Point> ground = OnCircle(7, 0.17);
  EXPECT_LE(LargestShatteredSubset(balls, ground, 5), 4);  // <= d + 2
}

// ---------- Convex polygons: VC-dim = ∞ ----------

TEST(VcDimensionTest, ConvexPolygonsShatterAnyCoCircularSet) {
  // Points in convex position are shattered by convex polygons for every
  // n — the paper's example of a non-learnable range space (§2.2).
  ConvexPolygonFamily poly;
  for (int n : {4, 6, 8, 10}) {
    EXPECT_TRUE(IsShattered(poly, OnCircle(n))) << n;
  }
}

TEST(VcDimensionTest, ConvexPolygonsFailWithInteriorPoint) {
  ConvexPolygonFamily poly;
  std::vector<Point> pts = OnCircle(4);
  pts.push_back({0.5, 0.5});  // inside the hull of the others
  EXPECT_FALSE(IsShattered(poly, pts));
}

TEST(ConvexHullTest, HullOfSquare) {
  auto hull = ConvexHull2D(
      {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}, {0.5, 0.5}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_TRUE(PointInConvexPolygon({0.5, 0.5}, hull));
  EXPECT_TRUE(PointInConvexPolygon({0.0, 0.0}, hull));  // vertex: closed
  EXPECT_FALSE(PointInConvexPolygon({1.5, 0.5}, hull));
}

TEST(ConvexHullTest, CollinearPoints) {
  auto hull = ConvexHull2D({{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}});
  EXPECT_LE(hull.size(), 2u);
  EXPECT_TRUE(PointInConvexPolygon({0.25, 0.25}, hull));
  EXPECT_FALSE(PointInConvexPolygon({0.25, 0.30}, hull));
}

// ---------- Fat shattering (§2.3, Lemma 2.7) ----------

TEST(FatShatteringTest, Lemma27PointMassConstruction) {
  // Dually-shattered ranges + point-mass distributions: for k ranges,
  // the 2^k distributions realize every subset at selectivity 0/1, so
  // the class is γ-shattered with witness 1/2 for any γ < 1/2.
  const int k = 3;
  DenseMatrix s(1 << k, k);  // row = distribution (point mass), col = range
  for (int e = 0; e < (1 << k); ++e) {
    for (int r = 0; r < k; ++r) {
      s.at(e, r) = (e & (1 << r)) ? 1.0 : 0.0;
    }
  }
  const std::vector<int> all = {0, 1, 2};
  const Vector half(k, 0.5);
  EXPECT_TRUE(IsFatShatteredWithWitness(s, all, half, 0.49));
  EXPECT_TRUE(IsFatShatteredWithWitness(s, all, half, 0.25));
}

TEST(FatShatteringTest, MissingDistributionBreaksShattering) {
  // Remove the distribution realizing E = {range 0}: no longer shattered.
  const int k = 2;
  DenseMatrix s(3, k);
  int row = 0;
  for (int e = 0; e < 4; ++e) {
    if (e == 1) continue;  // drop E = {0}
    for (int r = 0; r < k; ++r) {
      s.at(row, r) = (e & (1 << r)) ? 1.0 : 0.0;
    }
    ++row;
  }
  EXPECT_FALSE(
      IsFatShatteredWithWitness(s, {0, 1}, Vector(k, 0.5), 0.25));
}

TEST(FatShatteringTest, GammaAboveHalfNeverShatters01Matrix) {
  DenseMatrix s(4, 2);
  for (int e = 0; e < 4; ++e) {
    s.at(e, 0) = e & 1 ? 1.0 : 0.0;
    s.at(e, 1) = e & 2 ? 1.0 : 0.0;
  }
  // witness 0.5 and gamma 0.6: would need values >= 1.1 — impossible.
  EXPECT_FALSE(IsFatShatteredWithWitness(s, {0, 1}, Vector(2, 0.5), 0.6));
}

TEST(FatShatteringTest, WitnessSearchFindsNonObviousWitness) {
  // Values {0.1, 0.6} on range 0 and {0.2, 0.9} on range 1: shattered at
  // gamma = 0.2 only with per-range witnesses (~0.35, ~0.55).
  DenseMatrix s(4, 2);
  const double v0[] = {0.1, 0.6};
  const double v1[] = {0.2, 0.9};
  for (int e = 0; e < 4; ++e) {
    s.at(e, 0) = v0[e & 1];
    s.at(e, 1) = v1[(e >> 1) & 1];
  }
  EXPECT_TRUE(IsFatShattered(s, {0, 1}, 0.2));
  EXPECT_FALSE(IsFatShattered(s, {0, 1}, 0.45));
}

TEST(FatShatteringTest, DimensionOfIdentityLikeClass) {
  // 2 ranges fully shattered, a third constant: dimension is 2 at
  // moderate gamma.
  DenseMatrix s(4, 3);
  for (int e = 0; e < 4; ++e) {
    s.at(e, 0) = e & 1 ? 0.9 : 0.1;
    s.at(e, 1) = e & 2 ? 0.9 : 0.1;
    s.at(e, 2) = 0.5;
  }
  EXPECT_EQ(FatShatteringDimension(s, 0.3), 2);
}

TEST(FatShatteringTest, ScaleSensitivity) {
  // The same class has larger dimension at finer scales — the defining
  // property of the fat-shattering dimension (§2.3).
  DenseMatrix s(4, 2);
  for (int e = 0; e < 4; ++e) {
    s.at(e, 0) = e & 1 ? 0.55 : 0.45;  // only 0.1 of separation
    s.at(e, 1) = e & 2 ? 0.9 : 0.1;
  }
  EXPECT_EQ(FatShatteringDimension(s, 0.04), 2);
  EXPECT_EQ(FatShatteringDimension(s, 0.2), 1);
}

}  // namespace
}  // namespace sel
