// Tests for the reimplemented baselines: QuickSel (uniform-mixture
// kernels) and ISOMER (STHoles drilling + max-entropy weights).
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/isomer.h"
#include "baselines/quicksel.h"
#include "data/generators.h"
#include "index/kdtree.h"
#include "eval_metrics/metrics.h"
#include "workload/workload.h"

namespace sel {
namespace {

struct Fixture {
  Fixture()
      : data(MakePowerLike(4000, 150).Project({0, 1})), index(data.rows()) {}

  Workload Make(size_t n, uint64_t seed) const {
    WorkloadOptions opts;
    opts.seed = seed;
    WorkloadGenerator gen(&data, &index, opts);
    return gen.Generate(n);
  }

  Dataset data;
  CountingKdTree index;
};

// ---------- QuickSel ----------

TEST(QuickSelTest, KernelBudgetIs4xByDefault) {
  Fixture f;
  QuickSel m(2, QuickSelOptions{});
  ASSERT_TRUE(m.Train(f.Make(50, 151)).ok());
  EXPECT_EQ(m.NumBuckets(), 200u);
}

TEST(QuickSelTest, KernelsIncludeTrainingBoxes) {
  Fixture f;
  const Workload w = f.Make(30, 152);
  QuickSel m(2, QuickSelOptions{});
  ASSERT_TRUE(m.Train(w).ok());
  // Kernel 0 is the background (domain); the next |w| kernels are the
  // clipped training boxes themselves.
  EXPECT_EQ(m.Kernels()[0], Box::Unit(2));
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(m.Kernels()[i + 1], *w[i].query.box().Intersection(
                                      Box::Unit(2)));
  }
}

TEST(QuickSelTest, EstimatesBoundedAndFullDomainNearOne) {
  Fixture f;
  QuickSel m(2, QuickSelOptions{});
  ASSERT_TRUE(m.Train(f.Make(80, 153)).ok());
  for (const auto& z : f.Make(60, 154)) {
    const double e = m.Estimate(z.query);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
  EXPECT_NEAR(m.Estimate(Box::Unit(2)), 1.0, 1e-6);
}

TEST(QuickSelTest, AccuracyImprovesWithTrainingSize) {
  Fixture f;
  const Workload test = f.Make(150, 155);
  QuickSel small(2, QuickSelOptions{});
  ASSERT_TRUE(small.Train(f.Make(20, 156)).ok());
  QuickSel large(2, QuickSelOptions{});
  ASSERT_TRUE(large.Train(f.Make(300, 157)).ok());
  EXPECT_LT(EvaluateModel(large, test).rms,
            EvaluateModel(small, test).rms);
  EXPECT_LT(EvaluateModel(large, test).rms, 0.06);
}

TEST(QuickSelTest, RejectsNonBoxQueries) {
  QuickSel m(2, QuickSelOptions{});
  Workload w;
  w.push_back({Ball({0.5, 0.5}, 0.2), 0.3});
  const Status st = m.Train(w);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
}

TEST(QuickSelTest, DeterministicGivenSeed) {
  Fixture f;
  const Workload w = f.Make(40, 158);
  QuickSel a(2, QuickSelOptions{}), b(2, QuickSelOptions{});
  ASSERT_TRUE(a.Train(w).ok());
  ASSERT_TRUE(b.Train(w).ok());
  for (const auto& z : f.Make(20, 159)) {
    EXPECT_EQ(a.Estimate(z.query), b.Estimate(z.query));
  }
}

// ---------- ISOMER ----------

TEST(IsomerTest, SingleQueryDrillsOneHole) {
  Isomer m(2, IsomerOptions{});
  Workload w;
  w.push_back({Box({0.2, 0.2}, {0.6, 0.6}), 0.7});
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_EQ(m.NumBuckets(), 2u);  // root + one hole
  EXPECT_NEAR(m.Estimate(Box({0.2, 0.2}, {0.6, 0.6})), 0.7, 0.02);
}

TEST(IsomerTest, FitsDisjointQueriesExactly) {
  Isomer m(2, IsomerOptions{});
  Workload w;
  w.push_back({Box({0.0, 0.0}, {0.3, 0.3}), 0.5});
  w.push_back({Box({0.6, 0.6}, {0.9, 0.9}), 0.2});
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_NEAR(m.Estimate(w[0].query), 0.5, 0.02);
  EXPECT_NEAR(m.Estimate(w[1].query), 0.2, 0.02);
}

TEST(IsomerTest, HandlesNestedQueries) {
  Isomer m(2, IsomerOptions{});
  Workload w;
  w.push_back({Box({0.1, 0.1}, {0.9, 0.9}), 0.9});
  w.push_back({Box({0.3, 0.3}, {0.5, 0.5}), 0.6});
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_NEAR(m.Estimate(w[0].query), 0.9, 0.05);
  EXPECT_NEAR(m.Estimate(w[1].query), 0.6, 0.05);
}

TEST(IsomerTest, HandlesOverlappingQueries) {
  Isomer m(2, IsomerOptions{});
  Workload w;
  w.push_back({Box({0.0, 0.0}, {0.6, 0.6}), 0.5});
  w.push_back({Box({0.4, 0.4}, {1.0, 1.0}), 0.4});
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_NEAR(m.Estimate(w[0].query), 0.5, 0.06);
  EXPECT_NEAR(m.Estimate(w[1].query), 0.4, 0.06);
}

TEST(IsomerTest, BucketCountGrowsSuperlinearlyWithQueries) {
  // The paper reports ISOMER using 48-160x buckets per training query;
  // our drilling reproduces bucket counts well above the query count.
  Fixture f;
  Isomer m(2, IsomerOptions{});
  const Workload w = f.Make(100, 160);
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_GT(m.NumBuckets(), w.size());
}

TEST(IsomerTest, AccurateOnRealisticWorkload) {
  Fixture f;
  Isomer m(2, IsomerOptions{});
  ASSERT_TRUE(m.Train(f.Make(120, 161)).ok());
  const ErrorReport r = EvaluateModel(m, f.Make(100, 162));
  EXPECT_LT(r.rms, 0.08);
}

TEST(IsomerTest, WeightsFormDistribution) {
  Fixture f;
  Isomer m(2, IsomerOptions{});
  ASSERT_TRUE(m.Train(f.Make(50, 163)).ok());
  EXPECT_NEAR(m.Estimate(Box::Unit(2)), 1.0, 1e-6);
}

TEST(IsomerTest, RejectsNonBoxQueries) {
  Isomer m(2, IsomerOptions{});
  Workload w;
  w.push_back({Halfspace({1.0, 0.0}, 0.5), 0.5});
  EXPECT_EQ(m.Train(w).code(), StatusCode::kUnimplemented);
}

TEST(IsomerTest, TrainingSlowerThanQuickSel) {
  // §4.1: ISOMER is much slower to train than the others. Compare at a
  // size where both finish quickly; the gap should still be visible.
  Fixture f;
  const Workload w = f.Make(150, 164);
  Isomer iso(2, IsomerOptions{});
  ASSERT_TRUE(iso.Train(w).ok());
  QuickSel qs(2, QuickSelOptions{});
  ASSERT_TRUE(qs.Train(w).ok());
  // Don't assert a strict ratio (machine-dependent); just record that
  // both produce stats and ISOMER used many sweeps.
  EXPECT_GT(iso.train_stats().solver_iterations, 0);
  EXPECT_GE(iso.train_stats().train_seconds, 0.0);
}

}  // namespace
}  // namespace sel
