// Property suite for the SIMD kernel layer (DESIGN.md §12).
//
// The contract under test is stronger than "close enough": a given
// input must produce BIT-IDENTICAL results under every dispatch level
// (scalar, sse2, avx2 — whichever the host supports), because every
// variant implements the same fixed lane-striped blocked reduction and
// the same per-element operation sequence. Against a naive sequential
// reference the blocked order may differ, which is what the library's
// plan-vs-virtual 1e-12 tolerance absorbs; reductions are checked
// against that reference at 1e-12 as well.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sel/sel.h"

namespace sel {
namespace {

/// Forces a dispatch level for one scope, restoring the previous one.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(ActiveSimdLevel()) {
    SetSimdLevel(level);
  }
  ~ScopedSimdLevel() { SetSimdLevel(prev_); }

 private:
  SimdLevel prev_;
};

/// Every level this host can actually run (always includes kScalar).
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const int max = static_cast<int>(MaxSupportedSimdLevel());
  if (max >= static_cast<int>(SimdLevel::kSse2)) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (max >= static_cast<int>(SimdLevel::kAvx2)) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

std::vector<double> RandomVector(Rng* rng, size_t n, double lo = -1.0,
                                 double hi = 1.0) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->Uniform(lo, hi);
  return v;
}

TEST(SimdDispatchTest, ParseKnowsEverySpelling) {
  SimdLevel level = SimdLevel::kAvx2;
  EXPECT_TRUE(ParseSimdLevel("scalar", &level));
  EXPECT_EQ(level, SimdLevel::kScalar);
  EXPECT_TRUE(ParseSimdLevel("sse2", &level));
  EXPECT_EQ(level, SimdLevel::kSse2);
  EXPECT_TRUE(ParseSimdLevel("avx2", &level));
  EXPECT_EQ(level, SimdLevel::kAvx2);
  EXPECT_TRUE(ParseSimdLevel("auto", &level));
  EXPECT_EQ(level, MaxSupportedSimdLevel());
  EXPECT_FALSE(ParseSimdLevel("", &level));
  EXPECT_FALSE(ParseSimdLevel("AVX2", &level));
  EXPECT_FALSE(ParseSimdLevel("avx512", &level));
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse2), "sse2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdDispatchTest, SetLevelClampsAndReportsActive) {
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scope(level);
    EXPECT_EQ(ActiveSimdLevel(), level);
    EXPECT_EQ(Simd().level, level);
  }
  // A request above hardware support clamps down instead of crashing.
  ScopedSimdLevel scope(SimdLevel::kAvx2);
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(MaxSupportedSimdLevel()));
}

TEST(SimdDispatchTest, PathGaugeTracksDispatch) {
  SetMetricsEnabled(true);
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scope(level);
    EXPECT_EQ(MetricsRegistry::Global().GetGauge("simd.path").Value(),
              static_cast<int64_t>(level));
  }
  SetMetricsEnabled(false);
}

TEST(SimdLayoutTest, PaddedCountCoversFullWidthLoads) {
  for (size_t n = 0; n <= 200; ++n) {
    const size_t padded = SimdPaddedCount(n);
    EXPECT_EQ(padded % kSimdBlock, 0u) << n;
    EXPECT_GE(padded, n) << n;
    // A full block load starting at the LAST real element must fit.
    if (n > 0) {
      EXPECT_GE(padded, n - 1 + kSimdBlock) << n;
    }
  }
}

TEST(SimdLayoutTest, AlignedVectorIsCacheLineAligned) {
  for (size_t n : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    AlignedVector v(n, 0.0);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kSimdAlign, 0u) << n;
  }
}

// dot / squared_norm / sparse_dot: bit-identical across levels, 1e-12
// against the naive sequential sum. Sizes stress every tail residue.
TEST(SimdKernelTest, ReductionsBitIdenticalAcrossLevels) {
  Rng rng(2101);
  const std::vector<SimdLevel> levels = SupportedLevels();
  for (size_t n :
       {0u, 1u, 2u, 3u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 64u, 100u}) {
    const std::vector<double> a = RandomVector(&rng, n);
    const std::vector<double> b = RandomVector(&rng, n);
    // A sparse row gathering from a larger x, columns deliberately
    // shuffled and duplicated.
    const std::vector<double> x = RandomVector(&rng, 256);
    std::vector<int32_t> cols(n);
    for (auto& c : cols) c = static_cast<int32_t>(rng.UniformInt(256));

    double ref_dot = 0.0, ref_sq = 0.0, ref_sparse = 0.0;
    for (size_t j = 0; j < n; ++j) {
      ref_dot += a[j] * b[j];
      ref_sq += a[j] * a[j];
      ref_sparse += a[j] * x[cols[j]];
    }

    double base_dot = 0.0, base_sq = 0.0, base_sparse = 0.0;
    for (size_t li = 0; li < levels.size(); ++li) {
      ScopedSimdLevel scope(levels[li]);
      const SimdOps& ops = Simd();
      const double d = ops.dot(a.data(), b.data(), n);
      const double sq = ops.squared_norm(a.data(), n);
      const double sp = ops.sparse_dot(cols.data(), a.data(), n, x.data());
      if (li == 0) {
        base_dot = d;
        base_sq = sq;
        base_sparse = sp;
        EXPECT_NEAR(d, ref_dot, 1e-12) << "n=" << n;
        EXPECT_NEAR(sq, ref_sq, 1e-12) << "n=" << n;
        EXPECT_NEAR(sp, ref_sparse, 1e-12) << "n=" << n;
      } else {
        EXPECT_EQ(d, base_dot)
            << "dot n=" << n << " level " << SimdLevelName(levels[li]);
        EXPECT_EQ(sq, base_sq)
            << "sqnorm n=" << n << " level " << SimdLevelName(levels[li]);
        EXPECT_EQ(sp, base_sparse)
            << "sparse n=" << n << " level " << SimdLevelName(levels[li]);
      }
    }
  }
}

// Elementwise kernels: exact equality per element across levels (they
// are clamp/fused-free arithmetic, no reduction involved).
TEST(SimdKernelTest, ElementwiseKernelsExactAcrossLevels) {
  Rng rng(2102);
  const std::vector<SimdLevel> levels = SupportedLevels();
  for (size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 13u, 32u, 57u}) {
    const std::vector<double> x = RandomVector(&rng, n);
    const std::vector<double> y = RandomVector(&rng, n);
    const double alpha = rng.Uniform(-2.0, 2.0);
    const double tau = rng.Uniform(-0.5, 0.5);

    std::vector<double> axpy_base, axpby_base, extra_base, sub_base,
        relu_base;
    for (size_t li = 0; li < levels.size(); ++li) {
      ScopedSimdLevel scope(levels[li]);
      const SimdOps& ops = Simd();
      std::vector<double> axpy_v = y;
      ops.axpy(alpha, x.data(), axpy_v.data(), n);
      std::vector<double> axpby_v(n, 0.0);
      ops.axpby_out(x.data(), alpha, y.data(), axpby_v.data(), n);
      std::vector<double> extra_v(n, 0.0);
      ops.extrapolate(x.data(), y.data(), alpha, extra_v.data(), n);
      std::vector<double> sub_v = x;
      ops.sub_inplace(sub_v.data(), y.data(), n);
      std::vector<double> relu_v = x;
      ops.shift_relu(relu_v.data(), tau, n);
      if (li == 0) {
        axpy_base = axpy_v;
        axpby_base = axpby_v;
        extra_base = extra_v;
        sub_base = sub_v;
        relu_base = relu_v;
        for (size_t j = 0; j < n; ++j) {
          EXPECT_EQ(axpy_v[j], y[j] + alpha * x[j]);
          EXPECT_EQ(axpby_v[j], x[j] + alpha * y[j]);
          EXPECT_EQ(extra_v[j], x[j] + alpha * (x[j] - y[j]));
          EXPECT_EQ(sub_v[j], x[j] - y[j]);
          EXPECT_GE(relu_v[j], 0.0);
        }
      } else {
        EXPECT_EQ(axpy_v, axpy_base) << SimdLevelName(levels[li]);
        EXPECT_EQ(axpby_v, axpby_base) << SimdLevelName(levels[li]);
        EXPECT_EQ(extra_v, extra_base) << SimdLevelName(levels[li]);
        EXPECT_EQ(sub_v, sub_base) << SimdLevelName(levels[li]);
        EXPECT_EQ(relu_v, relu_base) << SimdLevelName(levels[li]);
      }
    }
  }
}

/// Builds a padded coordinate-major box SoA the way CompiledPlan does:
/// stride = SimdPaddedCount(n), sentinel boxes (lo=+2 > hi=-2) beyond n.
struct PaddedBoxes {
  int dim;
  size_t n, stride;
  AlignedVector lo, hi, weight, inv_vol;

  PaddedBoxes(Rng* rng, int d, size_t count)
      : dim(d), n(count), stride(SimdPaddedCount(count)) {
    lo.assign(static_cast<size_t>(d) * stride, 2.0);
    hi.assign(static_cast<size_t>(d) * stride, -2.0);
    weight.assign(stride, 0.0);
    inv_vol.assign(stride, 0.0);
    for (size_t j = 0; j < n; ++j) {
      double vol = 1.0;
      for (int c = 0; c < d; ++c) {
        const double a = rng->Uniform(0.0, 0.9);
        const double b = a + rng->Uniform(0.01, 1.0 - a);
        lo[static_cast<size_t>(c) * stride + j] = a;
        hi[static_cast<size_t>(c) * stride + j] = b;
        vol *= b - a;
      }
      weight[j] = rng->Uniform(0.0, 1.0);
      inv_vol[j] = 1.0 / vol;
    }
  }
};

// Leaf kernels over random dims in [1, 12], entry counts with ragged
// tails, and arbitrary [begin, end) subranges (leaves start mid-array):
// bit-identical across levels, 1e-12 against the naive per-entry sum.
TEST(SimdKernelTest, BoxLeafSumAcrossLevels) {
  Rng rng(2103);
  const std::vector<SimdLevel> levels = SupportedLevels();
  for (int trial = 0; trial < 40; ++trial) {
    const int d = 1 + static_cast<int>(rng.UniformInt(12));
    const size_t n = 1 + rng.UniformInt(70);
    PaddedBoxes boxes(&rng, d, n);
    const size_t begin = rng.UniformInt(n);
    const size_t end = begin + 1 + rng.UniformInt(n - begin);
    std::vector<double> qlo(d), qhi(d);
    for (int c = 0; c < d; ++c) {
      qlo[c] = rng.Uniform(0.0, 0.6);
      qhi[c] = qlo[c] + rng.Uniform(0.0, 1.0 - qlo[c]);
    }

    double ref = 0.0;
    for (size_t j = begin; j < end; ++j) {
      double inter = 1.0;
      bool dead = false;
      for (int c = 0; c < d; ++c) {
        const size_t at = static_cast<size_t>(c) * boxes.stride + j;
        const double l = std::max(qlo[c], boxes.lo[at]);
        const double h = std::min(qhi[c], boxes.hi[at]);
        if (h - l <= 0.0) dead = true;
        inter *= h - l;
      }
      if (!dead) {
        ref += boxes.weight[j] *
               std::clamp(inter * boxes.inv_vol[j], 0.0, 1.0);
      }
    }

    double base = 0.0;
    for (size_t li = 0; li < levels.size(); ++li) {
      ScopedSimdLevel scope(levels[li]);
      const double got = Simd().box_leaf_sum(
          qlo.data(), qhi.data(), d, boxes.lo.data(), boxes.hi.data(),
          boxes.weight.data(), boxes.inv_vol.data(), boxes.stride, begin,
          end);
      if (li == 0) {
        base = got;
        EXPECT_NEAR(got, ref, 1e-12)
            << "d=" << d << " n=" << n << " [" << begin << "," << end << ")";
      } else {
        EXPECT_EQ(got, base)
            << "d=" << d << " n=" << n << " [" << begin << "," << end
            << ") level " << SimdLevelName(levels[li]);
      }
    }
  }
}

TEST(SimdKernelTest, PointLeafSumAcrossLevels) {
  Rng rng(2104);
  const std::vector<SimdLevel> levels = SupportedLevels();
  for (int trial = 0; trial < 40; ++trial) {
    const int d = 1 + static_cast<int>(rng.UniformInt(12));
    const size_t n = 1 + rng.UniformInt(70);
    const size_t stride = SimdPaddedCount(n);
    AlignedVector coords(static_cast<size_t>(d) * stride, 0.0);
    AlignedVector weight(stride, 0.0);
    for (size_t j = 0; j < n; ++j) {
      for (int c = 0; c < d; ++c) {
        coords[static_cast<size_t>(c) * stride + j] = rng.Uniform(0.0, 1.0);
      }
      weight[j] = rng.Uniform(0.0, 1.0);
    }
    const size_t begin = rng.UniformInt(n);
    const size_t end = begin + 1 + rng.UniformInt(n - begin);
    // Queries sometimes touch point coordinates exactly (boundary hits).
    std::vector<double> qlo(d), qhi(d);
    for (int c = 0; c < d; ++c) {
      if (rng.UniformInt(4) == 0) {
        qlo[c] = coords[static_cast<size_t>(c) * stride + begin];
        qhi[c] = qlo[c];
      } else {
        qlo[c] = rng.Uniform(0.0, 0.7);
        qhi[c] = qlo[c] + rng.Uniform(0.0, 1.0 - qlo[c]);
      }
    }

    double ref = 0.0;
    for (size_t j = begin; j < end; ++j) {
      bool alive = true;
      for (int c = 0; c < d; ++c) {
        const double x = coords[static_cast<size_t>(c) * stride + j];
        alive = alive && x >= qlo[c] && x <= qhi[c];
      }
      if (alive) ref += weight[j];
    }

    double base = 0.0;
    for (size_t li = 0; li < levels.size(); ++li) {
      ScopedSimdLevel scope(levels[li]);
      const double got = Simd().point_leaf_sum(qlo.data(), qhi.data(), d,
                                               coords.data(), weight.data(),
                                               stride, begin, end);
      if (li == 0) {
        base = got;
        EXPECT_NEAR(got, ref, 1e-12) << "d=" << d << " n=" << n;
      } else {
        EXPECT_EQ(got, base)
            << "d=" << d << " n=" << n << " level "
            << SimdLevelName(levels[li]);
      }
    }
  }
}

// Whole-plan property: EstimateOne is bit-identical under every dispatch
// level, and within 1e-12 of the per-bucket Eq. (6) reference.
TEST(SimdKernelTest, CompiledPlanIdenticalAcrossLevels) {
  Rng rng(2105);
  const std::vector<SimdLevel> levels = SupportedLevels();
  for (int d : {1, 2, 3, 5}) {
    std::vector<Box> buckets;
    std::vector<double> weights;
    const size_t n = 40 + rng.UniformInt(60);
    double total = 0.0;
    for (size_t j = 0; j < n; ++j) {
      Point lo(d), hi(d);
      for (int c = 0; c < d; ++c) {
        lo[c] = rng.Uniform(0.0, 0.9);
        hi[c] = lo[c] + rng.Uniform(0.01, 1.0 - lo[c]);
      }
      buckets.emplace_back(lo, hi);
      weights.push_back(rng.Uniform(0.0, 1.0));
      total += weights.back();
    }
    for (auto& w : weights) w /= total;
    auto plan =
        CompiledPlan::FromBoxBuckets(buckets, weights, VolumeOptions{}, "t");
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    for (int probe = 0; probe < 20; ++probe) {
      Point qlo(d), qhi(d);
      for (int c = 0; c < d; ++c) {
        qlo[c] = rng.Uniform(0.0, 0.8);
        qhi[c] = qlo[c] + rng.Uniform(0.0, 1.0 - qlo[c]);
      }
      const Query q(Box(qlo, qhi));
      double ref = 0.0;
      for (size_t j = 0; j < n; ++j) {
        ref += BoxBucketTerm(q, buckets[j], weights[j],
                             1.0 / buckets[j].Volume(), VolumeOptions{});
      }

      double base = 0.0;
      for (size_t li = 0; li < levels.size(); ++li) {
        ScopedSimdLevel scope(levels[li]);
        const double got = plan.value().EstimateOne(q);
        if (li == 0) {
          base = got;
          EXPECT_NEAR(got, ref, 1e-12) << "d=" << d << " probe " << probe;
        } else {
          EXPECT_EQ(got, base)
              << "d=" << d << " probe " << probe << " level "
              << SimdLevelName(levels[li]);
        }
      }
    }
  }
}

// Matrix wrappers ride the same kernels: Apply / ApplyTranspose /
// SquaredNorm / Residual agree bitwise across levels for dense and
// sparse forms.
TEST(SimdKernelTest, MatrixOpsIdenticalAcrossLevels) {
  Rng rng(2106);
  const std::vector<SimdLevel> levels = SupportedLevels();
  const int rows = 23, cols = 17;
  DenseMatrix dense(rows, cols);
  std::vector<Triplet> trips;
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng.UniformInt(3) == 0) {
        const double v = rng.Uniform(-1.0, 1.0);
        dense.at(i, j) = v;
        trips.push_back(Triplet{i, j, v});
      }
    }
  }
  const SparseMatrix sparse =
      SparseMatrix::FromTriplets(rows, cols, trips);
  const Vector x = RandomVector(&rng, cols);
  const Vector z = RandomVector(&rng, rows);

  Vector base_dy, base_dt, base_sy, base_st;
  double base_norm = 0.0;
  for (size_t li = 0; li < levels.size(); ++li) {
    ScopedSimdLevel scope(levels[li]);
    const Vector dy = dense.Apply(x);
    const Vector dt = dense.ApplyTranspose(z);
    const Vector sy = sparse.Apply(x);
    const Vector st = sparse.ApplyTranspose(z);
    const double norm = SquaredNorm(x);
    if (li == 0) {
      base_dy = dy;
      base_dt = dt;
      base_sy = sy;
      base_st = st;
      base_norm = norm;
      // Dense and sparse hold the same matrix; both run the blocked
      // order but over different element sequences (dense includes the
      // zeros), so compare at the library tolerance.
      for (int i = 0; i < rows; ++i) EXPECT_NEAR(dy[i], sy[i], 1e-12);
    } else {
      EXPECT_EQ(dy, base_dy) << SimdLevelName(levels[li]);
      EXPECT_EQ(dt, base_dt) << SimdLevelName(levels[li]);
      EXPECT_EQ(sy, base_sy) << SimdLevelName(levels[li]);
      EXPECT_EQ(st, base_st) << SimdLevelName(levels[li]);
      EXPECT_EQ(norm, base_norm) << SimdLevelName(levels[li]);
    }
  }
}

// The full solver stack on top of the kernels: identical weights out of
// SolveSimplexLeastSquares under every dispatch level.
TEST(SimdKernelTest, SolverIdenticalAcrossLevels) {
  Rng rng(2107);
  const std::vector<SimdLevel> levels = SupportedLevels();
  const int rows = 30, cols = 12;
  std::vector<Triplet> trips;
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng.UniformInt(2) == 0) {
        trips.push_back(Triplet{i, j, rng.Uniform(0.0, 1.0)});
      }
    }
  }
  const Vector s = RandomVector(&rng, rows, 0.0, 1.0);
  SimplexLsqOptions opts;
  opts.max_iterations = 300;

  Vector base_w;
  for (size_t li = 0; li < levels.size(); ++li) {
    ScopedSimdLevel scope(levels[li]);
    // Fresh matrix per level so the Lipschitz memo cannot leak a value
    // computed under another level (it would be identical anyway; this
    // keeps the property honest).
    const SparseMatrix a = SparseMatrix::FromTriplets(rows, cols, trips);
    auto result = SolveSimplexLeastSquares(a, s, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (li == 0) {
      base_w = result.value().w;
    } else {
      EXPECT_EQ(result.value().w, base_w) << SimdLevelName(levels[li]);
    }
  }
}

// Satellite: the power-iteration Lipschitz estimate is memoized on the
// matrix, so repeated solves over the same A (the degradation chain's
// retry pattern) estimate once and hit the cache afterwards.
TEST(SimdKernelTest, LipschitzEstimateCachedBetweenSolves) {
  Rng rng(2108);
  const int rows = 25, cols = 10;
  std::vector<Triplet> trips;
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng.UniformInt(2) == 0) {
        trips.push_back(Triplet{i, j, rng.Uniform(0.0, 1.0)});
      }
    }
  }
  const SparseMatrix a = SparseMatrix::FromTriplets(rows, cols, trips);
  const Vector s = RandomVector(&rng, rows, 0.0, 1.0);

  SetMetricsEnabled(true);
  MetricsRegistry::Global().Reset();
  EXPECT_LT(a.lipschitz_cache().Get(), 0.0) << "cache must start empty";
  SimplexLsqOptions opts;
  Vector first_w, second_w;
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto result = SolveSimplexLeastSquares(a, s, opts);
    ASSERT_TRUE(result.ok());
    if (attempt == 0) first_w = result.value().w;
    second_w = result.value().w;
  }
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  SetMetricsEnabled(false);
  EXPECT_EQ(snap.CounterValue("solver.lipschitz.estimates_total"), 1u);
  EXPECT_EQ(snap.CounterValue("solver.lipschitz.cache_hits_total"), 2u);
  EXPECT_GT(a.lipschitz_cache().Get(), 0.0);
  // Memoization must not change the answer.
  EXPECT_EQ(first_w, second_w);
}

}  // namespace
}  // namespace sel
