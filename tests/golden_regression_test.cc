// Golden regression harness: trains every registered estimator on a
// fixed-seed synthetic workload and pins its accuracy inside a
// checked-in tolerance band. The bands are deliberately loose (about 2x
// the observed errors at the time they were recorded) so they catch
// real regressions — a solver change that silently degrades accuracy, a
// workload generator drift — without flaking on minor numeric noise.
//
// The same run doubles as an end-to-end check of the metrics registry:
// on the happy path no solve may fall back to the uniform prior and no
// online retrain may fail, and the observability counters must agree
// with what the harness itself did.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "common/env.h"
#include "common/metrics.h"
#include "core/estimator_registry.h"
#include "core/online.h"
#include "data/generators.h"
#include "index/kdtree.h"
#include "eval_metrics/metrics.h"
#include "workload/workload.h"

namespace sel {
namespace {

struct ToleranceBand {
  double max_rms;  // RMS selectivity error ceiling
  double max_q95;  // 95th-percentile Q-error ceiling
};

// Checked-in accuracy bands per registry name, on the fixed workload
// below (power-like data, 120 train / 60 test, seeds pinned). Update a
// band only when an intentional modeling change shifts the numbers; the
// git history of this table then documents every accuracy shift.
const std::map<std::string, ToleranceBand>& GoldenBands() {
  // Bands recorded from the run of 2026-08-08 with roughly 2x headroom:
  //   gmm      rms=0.130 q95=46.6
  //   isomer   rms=0.045 q95=23.7
  //   ptshist  rms=0.069 q95=57.3
  //   quadhist rms=0.122 q95=46.6
  //   quicksel rms=0.052 q95=10.0
  static const auto* bands = new std::map<std::string, ToleranceBand>{
      {"gmm", {0.26, 95.0}},      {"isomer", {0.10, 50.0}},
      {"ptshist", {0.15, 115.0}}, {"quadhist", {0.25, 95.0}},
      {"quicksel", {0.11, 25.0}},
  };
  return *bands;
}

// The @deadline ctest lane reruns this suite with SEL_SOLVE_DEADLINE_MS=1:
// solves degrade to their fallback stages by design, so the accuracy
// bands and the happy-path counter invariants do not apply there. What
// the lane DOES pin is that degradation stays graceful — no aborts, and
// every non-converged solve engaged a fallback stage.
bool DeadlineLaneActive() {
  return GetEnvInt("SEL_SOLVE_DEADLINE_MS", 0) > 0 ||
         GetEnvInt("SEL_TRAIN_DEADLINE_MS", 0) > 0;
}

struct GoldenFixture {
  Dataset data;
  std::unique_ptr<CountingKdTree> index;
  Workload train;
  Workload test;
};

// 120 training queries keeps every estimator feasible (ISOMER's cutoff
// is 200, §4.1) while staying fast enough for the sanitizer lanes.
GoldenFixture MakeGoldenFixture() {
  GoldenFixture f;
  f.data = MakePowerLike(4000, 7001);
  f.index = std::make_unique<CountingKdTree>(f.data.rows());
  WorkloadOptions wopts;
  wopts.seed = 4242;
  WorkloadGenerator gen(&f.data, f.index.get(), wopts);
  f.train = gen.Generate(120);
  WorkloadOptions topts = wopts;
  topts.seed = 9999;
  WorkloadGenerator test_gen(&f.data, f.index.get(), topts);
  f.test = test_gen.Generate(60);
  return f;
}

TEST(GoldenRegressionTest, EveryTrainableEstimatorStaysInsideItsBand) {
  SetMetricsEnabled(true);
  MetricsRegistry::Global().Reset();

  const GoldenFixture f = MakeGoldenFixture();
  const double q_floor = 1.0 / static_cast<double>(f.data.num_rows());
  size_t trained = 0;

  for (const std::string& name : EstimatorRegistry::Global().Names()) {
    // The static models are uniform priors until loaded from disk, AVI
    // builds from the dataset at construction, and the compiled-plan
    // wrapper is immutable by design; none of them has a
    // workload-training mode to regress against.
    if (name == "static" || name == "staticpoints" || name == "avi" ||
        name == "plan") {
      continue;
    }
    ASSERT_TRUE(GoldenBands().count(name) == 1)
        << "estimator '" << name
        << "' has no golden tolerance band; add one to GoldenBands()";
    const ToleranceBand& band = GoldenBands().at(name);

    auto spec = EstimatorSpec::Parse(name);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    auto model =
        EstimatorRegistry::Build(spec.value(), f.data.dim(), f.train.size());
    ASSERT_TRUE(model.ok()) << name << ": " << model.status().ToString();
    ASSERT_TRUE(model.value()->Train(f.train).ok()) << name;
    ++trained;

    // The degradation-chain contract holds in every lane: a solve that
    // did not converge must have engaged a fallback stage — "primary
    // accepted without convergence" is never a legal cell.
    const TrainStats& ts = model.value()->train_stats();
    if (!ts.converged) {
      EXPECT_GT(ts.fallback_level, 0)
          << name << ": non-converged solve accepted at the primary stage"
          << " (trail: " << ts.solver_status << ")";
    }

    const ErrorReport r = EvaluateModel(*model.value(), f.test, q_floor);
    // Observed values land in the log so band updates can be grounded in
    // a real run instead of guesswork.
    std::printf("golden %-10s rms=%.5f q50=%.3f q95=%.3f qmax=%.3f\n",
                name.c_str(), r.rms, r.q50, r.q95, r.qmax);
    if (!DeadlineLaneActive()) {
      EXPECT_LE(r.rms, band.max_rms)
          << name << ": rms regressed (got " << r.rms << ", band "
          << band.max_rms << ")";
      EXPECT_LE(r.q95, band.max_q95)
          << name << ": q95 regressed (got " << r.q95 << ", band "
          << band.max_q95 << ")";
    }
    EXPECT_GE(r.q50, 1.0) << name << ": q-error below 1 is impossible";
  }
  EXPECT_GE(trained, 5u) << "registry shrank: golden coverage is gone";

  // Happy-path observability invariants: the fixed workload is benign,
  // so nothing may have degraded to the uniform-prior fallback, and the
  // registry must have seen every solve the loop above ran. Under an
  // armed deadline the fallbacks are the expected outcome, not a bug.
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  if (!DeadlineLaneActive()) {
    EXPECT_EQ(snap.CounterValue("solver.fallback.uniform"), 0u);
    EXPECT_EQ(snap.CounterValue("online.retrain_failures_total"), 0u);
  }
  EXPECT_GT(snap.CounterValue("solver.solves_total"), 0u);
  EXPECT_GT(snap.CounterValue("predict.queries_total"), 0u);
  const HistogramSnapshot* h = snap.FindHistogram("predict.query_us");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count, 0u);
}

TEST(GoldenRegressionTest, OnlineHappyPathRecordsNoFailures) {
  SetMetricsEnabled(true);
  MetricsRegistry::Global().Reset();

  const GoldenFixture f = MakeGoldenFixture();
  OnlineOptions opts;
  opts.retrain_interval = 40;
  opts.estimator = "quadhist";
  auto online = OnlineEstimator::Create(f.data.dim(), opts);
  ASSERT_TRUE(online.ok()) << online.status().ToString();
  for (const auto& z : f.train) {
    ASSERT_TRUE(online.value()->Feedback(z.query, z.selectivity).ok());
  }
  const size_t attempts = online.value()->retrain_count() +
                          online.value()->failed_retrain_count();
  EXPECT_GE(attempts, 2u);

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  if (!DeadlineLaneActive()) {
    // Clean lane: every scheduled retrain published, nothing backed off.
    EXPECT_GE(online.value()->retrain_count(), 2u);
    EXPECT_EQ(snap.CounterValue("online.retrain_failures_total"), 0u);
    EXPECT_EQ(snap.GaugeValue("online.backoff_interval"),
              static_cast<int64_t>(opts.retrain_interval));
  } else {
    // Deadline lane: degraded candidates may be rejected by the gate,
    // but rejection is bookkept, never dropped on the floor.
    EXPECT_EQ(snap.CounterValue("online.retrain_failures_total"),
              online.value()->failed_retrain_count());
  }
  EXPECT_EQ(snap.CounterValue("online.retrains_total"),
            online.value()->retrain_count());
  const HistogramSnapshot* h = snap.FindHistogram("online.retrain_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, attempts);
}

}  // namespace
}  // namespace sel
