// Tests for the experiment harness: model factory conventions, scoring,
// scaling helpers, and the ASCII table printer.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/estimator_registry.h"
#include "data/generators.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"
#include "index/kdtree.h"
#include "workload/workload.h"

namespace sel {
namespace {

TEST(ModelFactoryTest, BuildsEveryRegisteredLearner) {
  for (const char* name : {"quadhist", "ptshist", "quicksel", "isomer"}) {
    auto m = EstimatorRegistry::Build(name, 2, 50);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    ASSERT_NE(m.value(), nullptr);
    EXPECT_EQ(m.value()->Name(),
              EstimatorRegistry::Global().Find(name)->display_name);
    EXPECT_EQ(m.value()->RegistryName(), name);
  }
}

TEST(ModelFactoryTest, BucketBudgetConvention) {
  // §4.1: "number of buckets 4x the number of training queries".
  const Dataset data = MakeUniform(1000, 2, 170);
  CountingKdTree index(data.rows());
  WorkloadOptions opts;
  WorkloadGenerator gen(&data, &index, opts);
  const Workload w = gen.Generate(50);
  auto pts = EstimatorRegistry::Build("ptshist", 2, 50);
  ASSERT_TRUE(pts.ok());
  ASSERT_TRUE(pts.value()->Train(w).ok());
  EXPECT_EQ(pts.value()->NumBuckets(), 200u);
  auto quad = EstimatorRegistry::Build("quadhist", 2, 50);
  ASSERT_TRUE(quad.ok());
  ASSERT_TRUE(quad.value()->Train(w).ok());
  EXPECT_LE(quad.value()->NumBuckets(), 200u);  // cap binds from above
}

TEST(TrainAndEvaluateTest, PopulatesCell) {
  const Dataset data = MakePowerLike(2000, 171).Project({0, 1});
  CountingKdTree index(data.rows());
  WorkloadOptions opts;
  WorkloadGenerator gen(&data, &index, opts);
  const Workload train = gen.Generate(60);
  const Workload test = gen.Generate(40);
  auto m = EstimatorRegistry::Build("quadhist", 2, train.size());
  ASSERT_TRUE(m.ok());
  const EvalCell cell = TrainAndEvaluate(m.value().get(), train, test);
  EXPECT_TRUE(cell.ok);
  EXPECT_EQ(cell.model, "QuadHist");
  EXPECT_EQ(cell.train_size, 60u);
  EXPECT_GT(cell.buckets, 0u);
  EXPECT_GE(cell.train_seconds, 0.0);
  EXPECT_EQ(cell.errors.num_queries, 40u);
  EXPECT_LT(cell.errors.rms, 0.2);
}

TEST(TrainAndEvaluateTest, ReportsFailure) {
  Workload bad;  // ball queries: QuickSel rejects
  bad.push_back({Ball({0.5, 0.5}, 0.1), 0.2});
  auto m = EstimatorRegistry::Build("quicksel", 2, 1);
  ASSERT_TRUE(m.ok());
  const EvalCell cell = TrainAndEvaluate(m.value().get(), bad, bad);
  EXPECT_FALSE(cell.ok);
  EXPECT_NE(cell.status_message.find("Unimplemented"), std::string::npos);
}

TEST(IsomerFeasibleTest, MatchesPaperCutoff) {
  EXPECT_TRUE(IsomerFeasible(50));
  EXPECT_TRUE(IsomerFeasible(200));
  EXPECT_FALSE(IsomerFeasible(500));  // §4.1: did not finish at 500
}

TEST(ScalingTest, ScaledSizesRespectScaleAndFloor) {
  setenv("REPRO_SCALE", "0.5", 1);
  const auto sizes = ScaledSizes({50, 200, 500, 1000, 2000}, 25);
  EXPECT_EQ(sizes.front(), 25u);
  EXPECT_EQ(sizes.back(), 1000u);
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);  // deduplicated, increasing
  }
  EXPECT_EQ(ScaledCount(100000), 50000u);
  unsetenv("REPRO_SCALE");
}

TEST(ScalingTest, DeduplicatesCollapsedSizes) {
  setenv("REPRO_SCALE", "0.01", 1);
  const auto sizes = ScaledSizes({50, 100, 200}, 25);
  EXPECT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 25u);
  unsetenv("REPRO_SCALE");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"model", "rms"});
  t.AddRow({"QuadHist", "0.01"});
  t.AddRow({"X", "0.5"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| model    | rms  |"), std::string::npos);
  EXPECT_NE(s.find("| QuadHist | 0.01 |"), std::string::npos);
  EXPECT_NE(s.find("| X        | 0.5  |"), std::string::npos);
  EXPECT_NE(s.find("|----------|------|"), std::string::npos);
}

TEST(TablePrinterTest, HeaderAccessors) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1", "2", "3"});
  EXPECT_EQ(t.headers().size(), 3u);
  EXPECT_EQ(t.rows().size(), 1u);
}

}  // namespace
}  // namespace sel
