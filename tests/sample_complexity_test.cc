// Tests for the Theorem 2.1 sample-complexity calculator: the functional
// forms of §2.2's implications.
#include <gtest/gtest.h>

#include "learning/sample_complexity.h"

namespace sel {
namespace {

TEST(SampleComplexityTest, VcDimensionsMatchSection22) {
  EXPECT_EQ(VcDimensionOf(QueryType::kBox, 2), 4);        // 2d
  EXPECT_EQ(VcDimensionOf(QueryType::kBox, 5), 10);
  EXPECT_EQ(VcDimensionOf(QueryType::kHalfspace, 2), 3);  // d+1
  EXPECT_EQ(VcDimensionOf(QueryType::kHalfspace, 7), 8);
  EXPECT_EQ(VcDimensionOf(QueryType::kBall, 2), 4);       // <= d+2
  EXPECT_EQ(VcDimensionOf(QueryType::kBall, 6), 8);
}

TEST(SampleComplexityTest, FatBoundGrowsWithSmallerGamma) {
  const double coarse = FatShatteringBound(4, 0.2);
  const double fine = FatShatteringBound(4, 0.02);
  EXPECT_GT(fine, coarse);
  // Lemma 2.6: roughly (1/γ)^{λ+1}; a 10x finer scale must cost at
  // least 10^λ more.
  EXPECT_GT(fine / coarse, 1e4);
}

TEST(SampleComplexityTest, FatBoundGrowsWithVcDimension) {
  EXPECT_GT(FatShatteringBound(6, 0.1), FatShatteringBound(4, 0.1));
  EXPECT_GT(FatShatteringBound(10, 0.1), FatShatteringBound(6, 0.1));
}

TEST(SampleComplexityTest, TrainingSizeMonotoneInAccuracy) {
  double prev = 0.0;
  for (double eps : {0.3, 0.2, 0.1, 0.05}) {
    const double n = TrainingSizeBound(QueryType::kBox, 2, eps, 0.05);
    EXPECT_GT(n, prev);
    prev = n;
  }
}

TEST(SampleComplexityTest, TrainingSizeMonotoneInConfidence) {
  const double loose = TrainingSizeBound(QueryType::kBox, 2, 0.1, 0.2);
  const double tight = TrainingSizeBound(QueryType::kBox, 2, 0.1, 0.001);
  EXPECT_GT(tight, loose);
}

TEST(SampleComplexityTest, DimensionalityOrderingMatchesSection22) {
  // At fixed d, the exponent λ+3 orders the classes: halfspaces (d+4)
  // < balls (d+5) < boxes (2d+3) for d >= 3 — the ordering §2.2 derives.
  const int d = 4;
  const double eps = 0.05, delta = 0.05;
  const double hs = TrainingSizeBound(QueryType::kHalfspace, d, eps, delta);
  const double ball = TrainingSizeBound(QueryType::kBall, d, eps, delta);
  const double box = TrainingSizeBound(QueryType::kBox, d, eps, delta);
  EXPECT_LT(hs, ball);
  EXPECT_LT(ball, box);
}

TEST(SampleComplexityTest, HigherDimensionNeedsMoreSamples) {
  // §4.4's empirical claim, in bound form.
  double prev = 0.0;
  for (int d : {2, 4, 6, 8, 10}) {
    const double n = TrainingSizeBound(QueryType::kBox, d, 0.1, 0.05);
    EXPECT_GT(n, prev) << d;
    prev = n;
  }
}

}  // namespace
}  // namespace sel
