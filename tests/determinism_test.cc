// Thread-count invariance: training and scoring the paper's two main
// models must be bit-identical whether the pool has 1 worker (the exact
// legacy serial path) or 8, and re-running with the same seed must
// reproduce the same model. This is the contract that makes SEL_THREADS
// a pure performance knob.
#include <gtest/gtest.h>

#include <vector>

#include "sel/sel.h"

namespace sel {
namespace {

struct TrainedRun {
  Vector weights;       // bucket weights, in fixed bucket order
  double train_loss;
  size_t buckets;
  ErrorReport report;   // full test-set scoring
};

// Exact (bitwise, via ==) equality of two runs, field by field.
void ExpectBitIdentical(const TrainedRun& a, const TrainedRun& b) {
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.train_loss, b.train_loss);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_EQ(a.weights[i], b.weights[i]) << "weight " << i;
  }
  EXPECT_EQ(a.report.rms, b.report.rms);
  EXPECT_EQ(a.report.mae, b.report.mae);
  EXPECT_EQ(a.report.linf, b.report.linf);
  EXPECT_EQ(a.report.q50, b.report.q50);
  EXPECT_EQ(a.report.q95, b.report.q95);
  EXPECT_EQ(a.report.q99, b.report.q99);
  EXPECT_EQ(a.report.qmax, b.report.qmax);
  EXPECT_EQ(a.report.num_queries, b.report.num_queries);
}

class DeterminismTest : public ::testing::TestWithParam<QueryType> {
 protected:
  void SetUp() override {
    auto ds = MakeDatasetByName("power", 3000, 1500);
    ASSERT_TRUE(ds.ok());
    data_ = ds.value().Project({0, 1, 2});
    index_ = std::make_unique<CountingKdTree>(data_.rows());
    WorkloadOptions opts;
    opts.query_type = GetParam();
    opts.seed = 20220612;
    WorkloadGenerator gen(&data_, index_.get(), opts);
    train_ = gen.Generate(100);
    test_ = gen.Generate(60);
  }

  TrainedRun RunQuadHist(int threads) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(&pool);
    QuadHistOptions o;
    o.max_leaves = 400;
    QuadHist model(data_.dim(), o);
    EXPECT_TRUE(model.Train(train_).ok());
    return TrainedRun{model.LeafWeights(), model.train_stats().train_loss,
                      model.NumBuckets(),
                      EvaluateModel(model, test_, 1e-6)};
  }

  TrainedRun RunPtsHist(int threads, uint64_t seed) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(&pool);
    PtsHistOptions o;
    o.model_size = 400;
    o.seed = seed;
    PtsHist model(data_.dim(), o);
    EXPECT_TRUE(model.Train(train_).ok());
    return TrainedRun{model.BucketWeights(),
                      model.train_stats().train_loss, model.NumBuckets(),
                      EvaluateModel(model, test_, 1e-6)};
  }

  Dataset data_;
  std::unique_ptr<CountingKdTree> index_;
  Workload train_, test_;
};

TEST_P(DeterminismTest, QuadHistBitIdenticalAcrossThreadCounts) {
  ExpectBitIdentical(RunQuadHist(1), RunQuadHist(8));
}

TEST_P(DeterminismTest, PtsHistBitIdenticalAcrossThreadCounts) {
  ExpectBitIdentical(RunPtsHist(1, 20220612), RunPtsHist(8, 20220612));
}

TEST_P(DeterminismTest, SameSeedReproducesSameModel) {
  ExpectBitIdentical(RunQuadHist(8), RunQuadHist(8));
  ExpectBitIdentical(RunPtsHist(8, 777), RunPtsHist(8, 777));
}

INSTANTIATE_TEST_SUITE_P(
    QueryTypes, DeterminismTest,
    ::testing::Values(QueryType::kBox, QueryType::kHalfspace,
                      QueryType::kBall),
    [](const ::testing::TestParamInfo<QueryType>& info) {
      return std::string(QueryTypeName(info.param));
    });

// The sweep harness itself (workload generation + cell fan-out) must
// also be invariant: identical EvalCells from a 1-thread and an 8-thread
// pool, in identical order.
TEST(SweepDeterminismTest, EvaluateModelMatchesSerialLoop) {
  auto ds = MakeDatasetByName("power", 2000, 99);
  ASSERT_TRUE(ds.ok());
  const Dataset data = ds.value().Project({0, 1});
  const CountingKdTree index(data.rows());
  WorkloadOptions opts;
  opts.seed = 31;
  WorkloadGenerator gen(&data, &index, opts);
  const Workload train = gen.Generate(80);
  const Workload test = gen.Generate(50);

  QuadHistOptions o;
  o.max_leaves = 256;
  QuadHist model(data.dim(), o);
  ASSERT_TRUE(model.Train(train).ok());

  // Pin the virtual path: the batched loop must match the serial
  // Estimate calls bit for bit. (The compiled-plan path sums buckets in
  // its own canonical order — its equivalence and determinism are
  // covered below and in serve_plan_test.)
  SetServePlanEnabled(false);
  {
    ThreadPool pool(8);
    ScopedPoolOverride scope(&pool);
    const std::vector<double> batched = EstimateBatch(model, test);
    ASSERT_EQ(batched.size(), test.size());
    for (size_t i = 0; i < test.size(); ++i) {
      EXPECT_EQ(batched[i], model.Estimate(test[i].query)) << "query " << i;
    }
  }

  // The plan path must itself be thread-count invariant.
  SetServePlanEnabled(true);
  std::vector<double> plan1, plan8;
  {
    ThreadPool pool(1);
    ScopedPoolOverride scope(&pool);
    plan1 = EstimateBatch(model, test);
  }
  {
    ThreadPool pool(8);
    ScopedPoolOverride scope(&pool);
    plan8 = EstimateBatch(model, test);
  }
  ASSERT_EQ(plan1.size(), plan8.size());
  for (size_t i = 0; i < plan1.size(); ++i) {
    EXPECT_EQ(plan1[i], plan8[i]) << "query " << i;
  }
}

}  // namespace
}  // namespace sel
