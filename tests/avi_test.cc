// Tests for the AVI (attribute-value-independence) baseline — and the
// paper's motivating gap: AVI is near-exact on independent data and
// systematically wrong on correlated data, which learned estimators fix.
#include <gtest/gtest.h>

#include "baselines/avi.h"
#include "core/quadhist.h"
#include "data/generators.h"
#include "index/kdtree.h"
#include "eval_metrics/metrics.h"
#include "workload/workload.h"

namespace sel {
namespace {

TEST(AviTest, MarginalMassSumsToOne) {
  const Dataset data = MakePowerLike(3000, 980).Project({0, 1});
  AviHistogram avi(data, AviOptions{});
  for (int j = 0; j < 2; ++j) {
    EXPECT_NEAR(avi.MarginalMass(j, 0.0, 1.0), 1.0, 1e-9);
    EXPECT_NEAR(avi.MarginalMass(j, 0.0, 0.4) + avi.MarginalMass(j, 0.4, 1.0),
                1.0, 1e-9);
  }
}

TEST(AviTest, ExactOnSingleDimension) {
  const Dataset data = MakeUniform(20000, 1, 981);
  AviHistogram avi(data, AviOptions{});
  CountingKdTree index(data.rows());
  for (double hi : {0.25, 0.5, 0.9}) {
    const Query q = Box({0.0}, {hi});
    EXPECT_NEAR(avi.Estimate(q), index.Selectivity(q), 0.02) << hi;
  }
}

TEST(AviTest, AccurateOnIndependentData) {
  const Dataset data = MakeUniform(20000, 2, 982);
  AviHistogram avi(data, AviOptions{});
  CountingKdTree index(data.rows());
  WorkloadOptions opts;
  opts.seed = 983;
  WorkloadGenerator gen(&data, &index, opts);
  const ErrorReport r = EvaluateModel(avi, gen.Generate(100));
  EXPECT_LT(r.rms, 0.02);  // independence assumption holds here
}

TEST(AviTest, FailsOnCorrelatedDataWhereLearnedSucceeds) {
  // Perfectly correlated attributes: mass lives on the diagonal. AVI
  // multiplies marginals and badly overestimates off-diagonal boxes.
  Rng rng(984);
  std::vector<Point> rows;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    rows.push_back({x, std::clamp(x + rng.Uniform(-0.02, 0.02), 0.0, 1.0)});
  }
  const Dataset data({{"x", false, 0}, {"y", false, 0}}, std::move(rows));
  const CountingKdTree index(data.rows());
  AviHistogram avi(data, AviOptions{});

  // Off-diagonal box: truth ~0, AVI predicts ~0.25.
  const Query off_diag = Box({0.0, 0.5}, {0.45, 1.0});
  EXPECT_LT(index.Selectivity(off_diag), 0.02);
  EXPECT_GT(avi.Estimate(off_diag), 0.15);

  // The workload-trained learner gets it right.
  WorkloadOptions opts;
  opts.seed = 985;
  WorkloadGenerator gen(&data, &index, opts);
  QuadHistOptions qo;
  qo.tau = 0.01;
  QuadHist learned(2, qo);
  ASSERT_TRUE(learned.Train(gen.Generate(200)).ok());
  EXPECT_LT(learned.Estimate(off_diag), 0.05);

  const Workload test = gen.Generate(100);
  EXPECT_LT(EvaluateModel(learned, test).rms,
            EvaluateModel(avi, test).rms);
}

TEST(AviTest, NonBoxQueriesViaProductQmc) {
  const Dataset data = MakeUniform(20000, 2, 986);
  AviHistogram avi(data, AviOptions{});
  CountingKdTree index(data.rows());
  const Query ball = Ball({0.5, 0.5}, 0.3);
  EXPECT_NEAR(avi.Estimate(ball), index.Selectivity(ball), 0.02);
  const Query hs = Halfspace({1.0, 1.0}, 1.0);
  EXPECT_NEAR(avi.Estimate(hs), index.Selectivity(hs), 0.02);
}

TEST(AviTest, WorkloadTrainingRejected) {
  const Dataset data = MakeUniform(100, 2, 987);
  AviHistogram avi(data, AviOptions{});
  EXPECT_EQ(avi.Train({}).code(), StatusCode::kFailedPrecondition);
}

TEST(AviTest, EstimatesBounded) {
  const Dataset data = MakePowerLike(2000, 988).Project({0, 3});
  AviHistogram avi(data, AviOptions{});
  CountingKdTree index(data.rows());
  WorkloadOptions opts;
  opts.seed = 989;
  WorkloadGenerator gen(&data, &index, opts);
  for (const auto& z : gen.Generate(100)) {
    const double e = avi.Estimate(z.query);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

}  // namespace
}  // namespace sel
