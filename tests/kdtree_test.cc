// Tests for the counting kd-tree: exact counts against brute force for
// every query type, across dimensions and dataset shapes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "index/kdtree.h"

namespace sel {
namespace {

size_t BruteCount(const std::vector<Point>& pts, const Query& q) {
  size_t c = 0;
  for (const auto& p : pts) {
    if (q.Contains(p)) ++c;
  }
  return c;
}

std::vector<Point> RandomPoints(size_t n, int d, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p(d);
    for (auto& x : p) x = rng.NextDouble();
    pts.push_back(std::move(p));
  }
  return pts;
}

TEST(KdTreeTest, EmptyTree) {
  CountingKdTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_DOUBLE_EQ(tree.Selectivity(Box::Unit(1)), 0.0);
}

TEST(KdTreeTest, SinglePoint) {
  CountingKdTree tree({{0.5, 0.5}});
  EXPECT_EQ(tree.Count(Box::Unit(2)), 1u);
  EXPECT_EQ(tree.Count(Box({0.0, 0.0}, {0.4, 0.4})), 0u);
  EXPECT_EQ(tree.Count(Ball({0.5, 0.5}, 0.01)), 1u);
}

TEST(KdTreeTest, FullDomainCountsEverything) {
  const auto pts = RandomPoints(5000, 3, 41);
  CountingKdTree tree(pts);
  EXPECT_EQ(tree.Count(Box::Unit(3)), 5000u);
  EXPECT_DOUBLE_EQ(tree.Selectivity(Box::Unit(3)), 1.0);
}

TEST(KdTreeTest, DuplicatePointsCounted) {
  std::vector<Point> pts(100, Point{0.25, 0.75});
  CountingKdTree tree(pts, 8);
  EXPECT_EQ(tree.Count(Box({0.2, 0.7}, {0.3, 0.8})), 100u);
  EXPECT_EQ(tree.Count(Box({0.3, 0.0}, {1.0, 1.0})), 0u);
}

TEST(KdTreeTest, BoundaryPointsIncluded) {
  CountingKdTree tree({{0.5, 0.5}, {0.2, 0.2}});
  // Closed query box: boundary point counts.
  EXPECT_EQ(tree.Count(Box({0.5, 0.5}, {1.0, 1.0})), 1u);
}

class KdTreeParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KdTreeParamTest, MatchesBruteForceOnAllQueryTypes) {
  const int d = std::get<0>(GetParam());
  const int leaf_size = std::get<1>(GetParam());
  const auto pts = RandomPoints(2000, d, 42 + d);
  CountingKdTree tree(pts, leaf_size);
  Rng rng(500 + d);
  for (int t = 0; t < 30; ++t) {
    Point c(d);
    for (auto& x : c) x = rng.NextDouble();
    Query q = Box::Unit(d);
    switch (t % 3) {
      case 0: {
        Point w(d);
        for (auto& x : w) x = rng.NextDouble();
        q = Box::FromCenterAndWidths(c, w, Box::Unit(d));
        break;
      }
      case 1:
        q = Ball(c, rng.NextDouble());
        break;
      case 2:
        q = Halfspace::ThroughPoint(c, rng.UnitVector(d));
        break;
    }
    EXPECT_EQ(tree.Count(q), BruteCount(pts, q))
        << "d=" << d << " t=" << t << " " << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndLeaves, KdTreeParamTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(1, 16, 64)));

TEST(KdTreeTest, SkewedDataMatchesBruteForce) {
  const Dataset data = MakePowerLike(3000, 99);
  const auto proj = data.Project({0, 3});
  CountingKdTree tree(proj.rows());
  Rng rng(77);
  for (int t = 0; t < 40; ++t) {
    const Point c = proj.row(rng.UniformInt(proj.num_rows()));
    Point w = {rng.NextDouble(), rng.NextDouble()};
    const Query q = Box::FromCenterAndWidths(c, w, Box::Unit(2));
    EXPECT_EQ(tree.Count(q), BruteCount(proj.rows(), q));
  }
}

TEST(KdTreeTest, SelectivityIsFraction) {
  const auto pts = RandomPoints(1000, 2, 7);
  CountingKdTree tree(pts);
  const Query q = Box({0.0, 0.0}, {0.5, 1.0});
  EXPECT_NEAR(tree.Selectivity(q), 0.5, 0.06);
  EXPECT_DOUBLE_EQ(tree.Selectivity(q),
                   static_cast<double>(tree.Count(q)) / 1000.0);
}

}  // namespace
}  // namespace sel
