// Property tests for the two-phase simplex: random 2-variable LPs are
// verified against brute-force vertex enumeration (the optimum of a
// bounded feasible LP lies at an intersection of two active constraints
// or axes), plus degenerate and redundant systems.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <optional>

#include "common/rng.h"
#include "solver/lp.h"

namespace sel {
namespace {

// All candidate vertices of {A x <= b, x >= 0} in 2-D: pairwise
// constraint intersections plus axis intersections.
std::optional<double> BruteForceMin(const LinearProgram& lp) {
  const int m = lp.constraint_matrix.rows();
  // Build the full constraint list including x >= 0 as -x_i <= 0.
  std::vector<std::array<double, 3>> rows;  // a0 x + a1 y <= rhs
  for (int i = 0; i < m; ++i) {
    rows.push_back({lp.constraint_matrix.at(i, 0),
                    lp.constraint_matrix.at(i, 1), lp.rhs[i]});
  }
  rows.push_back({-1.0, 0.0, 0.0});
  rows.push_back({0.0, -1.0, 0.0});

  auto feasible = [&rows](double x, double y) {
    for (const auto& r : rows) {
      if (r[0] * x + r[1] * y > r[2] + 1e-7) return false;
    }
    return true;
  };

  std::optional<double> best;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      const double det = rows[i][0] * rows[j][1] - rows[i][1] * rows[j][0];
      if (std::abs(det) < 1e-12) continue;
      const double x =
          (rows[i][2] * rows[j][1] - rows[i][1] * rows[j][2]) / det;
      const double y =
          (rows[i][0] * rows[j][2] - rows[i][2] * rows[j][0]) / det;
      if (!feasible(x, y)) continue;
      const double obj = lp.objective[0] * x + lp.objective[1] * y;
      if (!best.has_value() || obj < *best) best = obj;
    }
  }
  return best;
}

TEST(LpPropertyTest, RandomBounded2DLpsMatchVertexEnumeration) {
  Rng rng(2000);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    LinearProgram lp;
    lp.objective = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    const int m = 3 + static_cast<int>(rng.UniformInt(4));
    lp.constraint_matrix = DenseMatrix(m, 2);
    lp.rhs.assign(m, 0.0);
    lp.senses.assign(m, ConstraintSense::kLessEqual);
    for (int i = 0; i < m - 1; ++i) {
      lp.constraint_matrix.at(i, 0) = rng.Uniform(-1.0, 1.0);
      lp.constraint_matrix.at(i, 1) = rng.Uniform(-1.0, 1.0);
      lp.rhs[i] = rng.Uniform(0.1, 2.0);  // x = 0 feasible
    }
    // Boundedness: cap x + y.
    lp.constraint_matrix.at(m - 1, 0) = 1.0;
    lp.constraint_matrix.at(m - 1, 1) = 1.0;
    lp.rhs[m - 1] = rng.Uniform(1.0, 3.0);

    const LpResult res = SolveLinearProgram(lp);
    ASSERT_EQ(res.status, LpStatus::kOptimal) << "trial " << trial;
    const auto brute = BruteForceMin(lp);
    ASSERT_TRUE(brute.has_value());
    EXPECT_NEAR(res.objective, *brute, 1e-6) << "trial " << trial;
    ++solved;
  }
  EXPECT_EQ(solved, 200);
}

TEST(LpPropertyTest, MixedSensesMatchVertexEnumeration) {
  // Random LPs with >= and = rows, converted to an equivalent <= system
  // for the brute-force check.
  Rng rng(2001);
  for (int trial = 0; trial < 120; ++trial) {
    // Feasible-by-construction: pick an interior target point and make
    // every constraint consistent with it.
    const double tx = rng.Uniform(0.2, 1.0);
    const double ty = rng.Uniform(0.2, 1.0);
    LinearProgram lp;
    lp.objective = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    const int m = 4;
    lp.constraint_matrix = DenseMatrix(m, 2);
    lp.rhs.assign(m, 0.0);
    lp.senses.assign(m, ConstraintSense::kLessEqual);
    LinearProgram le_version = lp;  // same shapes, <= only
    le_version.constraint_matrix = DenseMatrix(m, 2);
    le_version.rhs.assign(m, 0.0);
    le_version.senses.assign(m, ConstraintSense::kLessEqual);
    for (int i = 0; i < m; ++i) {
      const double a = rng.Uniform(-1.0, 1.0);
      const double b = rng.Uniform(-1.0, 1.0);
      const double at_target = a * tx + b * ty;
      lp.constraint_matrix.at(i, 0) = a;
      lp.constraint_matrix.at(i, 1) = b;
      if (i == 0) {
        // One >= row through slack below the target.
        lp.senses[i] = ConstraintSense::kGreaterEqual;
        lp.rhs[i] = at_target - rng.Uniform(0.0, 0.5);
        le_version.constraint_matrix.at(i, 0) = -a;
        le_version.constraint_matrix.at(i, 1) = -b;
        le_version.rhs[i] = -lp.rhs[i];
      } else {
        lp.rhs[i] = at_target + rng.Uniform(0.0, 0.5);
        le_version.constraint_matrix.at(i, 0) = a;
        le_version.constraint_matrix.at(i, 1) = b;
        le_version.rhs[i] = lp.rhs[i];
      }
    }
    // Boundedness cap on both forms.
    LinearProgram capped = lp;
    LinearProgram capped_le = le_version;
    for (LinearProgram* p : {&capped, &capped_le}) {
      const int rows = p->constraint_matrix.rows();
      DenseMatrix ext(rows + 1, 2);
      for (int i = 0; i < rows; ++i) {
        ext.at(i, 0) = p->constraint_matrix.at(i, 0);
        ext.at(i, 1) = p->constraint_matrix.at(i, 1);
      }
      ext.at(rows, 0) = 1.0;
      ext.at(rows, 1) = 1.0;
      p->constraint_matrix = ext;
      p->rhs.push_back(4.0);
      p->senses.push_back(ConstraintSense::kLessEqual);
    }
    const LpResult res = SolveLinearProgram(capped);
    ASSERT_EQ(res.status, LpStatus::kOptimal) << trial;
    const auto brute = BruteForceMin(capped_le);
    ASSERT_TRUE(brute.has_value()) << trial;
    EXPECT_NEAR(res.objective, *brute, 1e-6) << trial;
  }
}

TEST(LpPropertyTest, RedundantConstraintsHarmless) {
  LinearProgram lp;
  lp.objective = {-1.0, 0.0};
  lp.constraint_matrix = DenseMatrix(3, 2);
  lp.rhs = {1.0, 2.0, 1.0};
  lp.senses.assign(3, ConstraintSense::kLessEqual);
  lp.constraint_matrix.at(0, 0) = 1.0;  // x <= 1
  lp.constraint_matrix.at(1, 0) = 1.0;  // x <= 2 (redundant)
  lp.constraint_matrix.at(2, 0) = 1.0;  // x <= 1 (duplicate)
  const LpResult r = SolveLinearProgram(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
}

TEST(LpPropertyTest, DegenerateVertexHandled) {
  // Three constraints meeting at one point (degenerate vertex).
  LinearProgram lp;
  lp.objective = {-1.0, -1.0};
  lp.constraint_matrix = DenseMatrix(3, 2);
  lp.rhs = {1.0, 1.0, 2.0};
  lp.senses.assign(3, ConstraintSense::kLessEqual);
  lp.constraint_matrix.at(0, 0) = 1.0;  // x <= 1
  lp.constraint_matrix.at(1, 1) = 1.0;  // y <= 1
  lp.constraint_matrix.at(2, 0) = 1.0;  // x + y <= 2 (through (1,1))
  lp.constraint_matrix.at(2, 1) = 1.0;
  const LpResult r = SolveLinearProgram(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-9);
}

TEST(LpPropertyTest, EqualityOnlySystem) {
  // x + y = 1, x - y = 0 -> unique point (0.5, 0.5).
  LinearProgram lp;
  lp.objective = {1.0, 2.0};
  lp.constraint_matrix = DenseMatrix(2, 2);
  lp.constraint_matrix.at(0, 0) = 1.0;
  lp.constraint_matrix.at(0, 1) = 1.0;
  lp.constraint_matrix.at(1, 0) = 1.0;
  lp.constraint_matrix.at(1, 1) = -1.0;
  lp.rhs = {1.0, 0.0};
  lp.senses = {ConstraintSense::kEqual, ConstraintSense::kEqual};
  const LpResult r = SolveLinearProgram(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 0.5, 1e-9);
  EXPECT_NEAR(r.x[1], 0.5, 1e-9);
}

TEST(LpPropertyTest, InfeasibleEqualitySystem) {
  // x + y = 1 and x + y = 2.
  LinearProgram lp;
  lp.objective = {0.0, 0.0};
  lp.constraint_matrix = DenseMatrix(2, 2);
  lp.constraint_matrix.at(0, 0) = 1.0;
  lp.constraint_matrix.at(0, 1) = 1.0;
  lp.constraint_matrix.at(1, 0) = 1.0;
  lp.constraint_matrix.at(1, 1) = 1.0;
  lp.rhs = {1.0, 2.0};
  lp.senses = {ConstraintSense::kEqual, ConstraintSense::kEqual};
  EXPECT_EQ(SolveLinearProgram(lp).status, LpStatus::kInfeasible);
}

}  // namespace
}  // namespace sel
