// Tests for static models and model serialization: every trained model
// round-trips through the text format with identical predictions.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault.h"
#include "core/estimator_registry.h"
#include "core/gmm.h"
#include "core/model_io.h"
#include "core/ptshist.h"
#include "core/quadhist.h"
#include "core/static_model.h"
#include "data/generators.h"
#include "index/kdtree.h"
#include "workload/workload.h"

namespace sel {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  Fixture()
      : data(MakePowerLike(3000, 900).Project({0, 1})),
        index(data.rows()) {}

  Workload Make(size_t n, uint64_t seed) const {
    WorkloadOptions opts;
    opts.seed = seed;
    WorkloadGenerator gen(&data, &index, opts);
    return gen.Generate(n);
  }

  Dataset data;
  CountingKdTree index;
};

TEST(StaticModelTest, HistogramEstimatesViaEq6) {
  std::vector<Box> buckets = {Box({0.0, 0.0}, {0.5, 1.0}),
                              Box({0.5, 0.0}, {1.0, 1.0})};
  StaticHistogram m(buckets, {0.8, 0.2});
  EXPECT_NEAR(m.Estimate(Box({0.0, 0.0}, {0.5, 1.0})), 0.8, 1e-12);
  EXPECT_NEAR(m.Estimate(Box({0.0, 0.0}, {0.25, 1.0})), 0.4, 1e-12);
  EXPECT_NEAR(m.Estimate(Box::Unit(2)), 1.0, 1e-12);
  EXPECT_EQ(m.NumBuckets(), 2u);
}

TEST(StaticModelTest, PointModelEstimatesViaEq7) {
  StaticPointModel m({{0.25, 0.25}, {0.75, 0.75}}, {0.3, 0.7});
  EXPECT_DOUBLE_EQ(m.Estimate(Box({0.0, 0.0}, {0.5, 0.5})), 0.3);
  EXPECT_DOUBLE_EQ(m.Estimate(Box({0.5, 0.5}, {1.0, 1.0})), 0.7);
  EXPECT_DOUBLE_EQ(m.Estimate(Box::Unit(2)), 1.0);
}

TEST(StaticModelTest, TrainIsRejected) {
  StaticHistogram h({Box::Unit(2)}, {1.0});
  EXPECT_EQ(h.Train({}).code(), StatusCode::kFailedPrecondition);
  StaticPointModel p({{0.5, 0.5}}, {1.0});
  EXPECT_EQ(p.Train({}).code(), StatusCode::kFailedPrecondition);
}

TEST(ModelIoTest, QuadHistRoundTripIdenticalEstimates) {
  Fixture f;
  const Workload train = f.Make(80, 901);
  QuadHistOptions qo;
  qo.tau = 0.02;
  QuadHist model(2, qo);
  ASSERT_TRUE(model.Train(train).ok());
  const std::string path = TempPath("sel_quadhist.model");
  ASSERT_TRUE(
      SaveHistogramModel(model.LeafBoxes(), model.LeafWeights(), path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const auto& z : f.Make(50, 902)) {
    EXPECT_NEAR(loaded.value()->Estimate(z.query), model.Estimate(z.query),
                1e-5);
  }
  std::filesystem::remove(path);
}

TEST(ModelIoTest, PtsHistRoundTripIdenticalEstimates) {
  Fixture f;
  const Workload train = f.Make(60, 903);
  PtsHist model(2, PtsHistOptions{});
  ASSERT_TRUE(model.Train(train).ok());
  const std::string path = TempPath("sel_ptshist.model");
  ASSERT_TRUE(
      SavePointModel(model.BucketPoints(), model.BucketWeights(), path)
          .ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->NumBuckets(), model.NumBuckets());
  for (const auto& z : f.Make(50, 904)) {
    EXPECT_NEAR(loaded.value()->Estimate(z.query), model.Estimate(z.query),
                1e-5);
  }
  std::filesystem::remove(path);
}

TEST(ModelIoTest, GmmRoundTripIdenticalEstimates) {
  Fixture f;
  const Workload train = f.Make(80, 905);
  GmmOptions go;
  go.num_components = 10;
  GmmModel model(2, go);
  ASSERT_TRUE(model.Train(train).ok());
  const std::string path = TempPath("sel_gmm.model");
  ASSERT_TRUE(SaveGmmModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->NumBuckets(), 10u);
  for (const auto& z : f.Make(50, 906)) {
    EXPECT_NEAR(loaded.value()->Estimate(z.query), model.Estimate(z.query),
                1e-5);
  }
  std::filesystem::remove(path);
}

TEST(ModelIoTest, RegistrySaveLoadBitIdenticalEstimates) {
  Fixture f;
  const Workload train = f.Make(60, 907);
  const Workload probe = f.Make(50, 908);
  for (const std::string& name :
       EstimatorRegistry::Global().SavableNames()) {
    auto built = EstimatorRegistry::Build(name, 2, train.size());
    ASSERT_TRUE(built.ok()) << name << ": " << built.status().ToString();
    SelectivityModel& model = *built.value();
    // Static forms and the compiled-plan wrapper ship untrained (uniform
    // prior); everything else is trained before serialization.
    if (name != "static" && name != "staticpoints" && name != "plan") {
      ASSERT_TRUE(model.Train(train).ok()) << name;
    }
    const std::string path = TempPath("sel_registry_" + name + ".model");
    ASSERT_TRUE(SaveModel(model, path).ok()) << name;
    auto loaded = LoadModel(path);
    ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded.value()->NumBuckets(), model.NumBuckets()) << name;
    // %.17g serialization round-trips doubles exactly: re-saving the
    // loaded model and loading again must give bit-identical estimates.
    const std::string path2 = TempPath("sel_registry_" + name + "_2.model");
    ASSERT_TRUE(SaveModel(*loaded.value(), path2).ok()) << name;
    auto reloaded = LoadModel(path2);
    ASSERT_TRUE(reloaded.ok()) << name << ": "
                               << reloaded.status().ToString();
    for (const auto& z : probe) {
      EXPECT_EQ(loaded.value()->Estimate(z.query),
                reloaded.value()->Estimate(z.query))
          << name;
      // Against the original model only to float accumulation order:
      // e.g. QuadHist sums its leaves tree-wise, the loaded histogram
      // linearly.
      EXPECT_NEAR(loaded.value()->Estimate(z.query),
                  model.Estimate(z.query), 1e-12)
          << name;
    }
    std::filesystem::remove(path);
    std::filesystem::remove(path2);
  }
}

TEST(ModelIoTest, SaveModelRejectsTransientEstimators) {
  Fixture f;
  const Workload train = f.Make(40, 909);
  auto built = EstimatorRegistry::Build("quicksel", 2, train.size());
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value()->Train(train).ok());
  const Status st = SaveModel(*built.value(), TempPath("x.model"));
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
  EXPECT_NE(st.ToString().find("does not support serialization"),
            std::string::npos);
  // The message enumerates what IS savable, straight from the registry.
  EXPECT_NE(st.ToString().find("quadhist"), std::string::npos);
}

TEST(ModelIoTest, SaveModelWritesRegistryNameHeader) {
  Fixture f;
  const Workload train = f.Make(40, 910);
  auto built = EstimatorRegistry::Build("quadhist", 2, train.size());
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value()->Train(train).ok());
  const std::string path = TempPath("sel_header.model");
  ASSERT_TRUE(SaveModel(*built.value(), path).ok());
  std::ifstream in(path);
  std::string line, header;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') {
      header = line;
      break;
    }
  }
  EXPECT_EQ(header.rfind("selmodel 1 quadhist 2 ", 0), 0u) << header;
  std::filesystem::remove(path);
}

TEST(ModelIoTest, RejectsCorruptFiles) {
  const std::string path = TempPath("sel_corrupt.model");
  {
    std::ofstream out(path);
    out << "not a model\n";
  }
  EXPECT_FALSE(LoadModel(path).ok());
  {
    std::ofstream out(path);
    out << "selmodel 1 histogram 2 3\n"
        << "box 0 0 1 1 0.5\n";  // claims 3 records, has 1
  }
  EXPECT_FALSE(LoadModel(path).ok());
  {
    std::ofstream out(path);
    out << "selmodel 1 histogram 2 1\n"
        << "point 0.5 0.5 1.0\n";  // record kind mismatch
  }
  EXPECT_FALSE(LoadModel(path).ok());
  {
    std::ofstream out(path);
    out << "selmodel 99 histogram 2 1\n"
        << "box 0 0 1 1 1.0\n";  // bad version
  }
  EXPECT_FALSE(LoadModel(path).ok());
  std::filesystem::remove(path);
  EXPECT_FALSE(LoadModel("/nonexistent/dir/m.model").ok());
}

TEST(ModelIoTest, RejectsNonFiniteValuesAsIOError) {
  const std::string path = TempPath("sel_nonfinite.model");
  auto write_and_code = [&path](const std::string& body) {
    std::ofstream out(path);
    out << body;
    out.close();
    return LoadModel(path).status().code();
  };
  // A NaN weight, coordinate, or stddev is corrupt data, not a value to
  // propagate into estimates.
  EXPECT_EQ(write_and_code("selmodel 1 histogram 2 1\n"
                           "box 0 0 1 1 nan\n"),
            StatusCode::kIOError);
  EXPECT_EQ(write_and_code("selmodel 1 histogram 2 1\n"
                           "box 0 nan 1 1 0.5\n"),
            StatusCode::kIOError);
  EXPECT_EQ(write_and_code("selmodel 1 points 2 1\n"
                           "point 0.5 inf 1.0\n"),
            StatusCode::kIOError);
  EXPECT_EQ(write_and_code("selmodel 1 gmm 2 1\n"
                           "gauss 0.5 0.5 nan 0.1 1.0\n"),
            StatusCode::kIOError);
  // Truncated record (stream ends mid-box) is IOError, not an abort.
  EXPECT_EQ(write_and_code("selmodel 1 histogram 2 2\n"
                           "box 0 0 1 1 0.5\n"
                           "box 0 0\n"),
            StatusCode::kIOError);
  std::filesystem::remove(path);
}

TEST(ModelIoTest, RejectsInvalidSaves) {
  EXPECT_FALSE(SaveHistogramModel({}, {}, TempPath("x.model")).ok());
  EXPECT_FALSE(SavePointModel({{0.5}}, {0.5, 0.5},
                              TempPath("x.model")).ok());
  GmmModel untrained(2, GmmOptions{});
  EXPECT_FALSE(SaveGmmModel(untrained, TempPath("x.model")).ok());
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ModelIoTest, SaveWritesCrcTrailerAndLoadVerifiesIt) {
  const std::string path = TempPath("sel_crc.model");
  std::vector<Box> buckets = {Box({0.0, 0.0}, {0.5, 1.0}),
                              Box({0.5, 0.0}, {1.0, 1.0})};
  ASSERT_TRUE(SaveHistogramModel(buckets, {0.75, 0.25}, path).ok());

  const std::string contents = Slurp(path);
  // The trailer is the last line; the payload above it is unchanged.
  ASSERT_NE(contents.rfind("\n#crc32 "), std::string::npos);
  EXPECT_TRUE(LoadModel(path).ok());
  // The staging temp file was renamed away, not left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Flip one payload byte under the intact trailer: detected as corrupt.
  {
    std::string tampered = contents;
    const size_t pos = tampered.find("0.75");
    ASSERT_NE(pos, std::string::npos);
    tampered[pos + 2] = '9';  // 0.75 -> 0.95
    std::ofstream out(path, std::ios::binary);
    out << tampered;
  }
  auto corrupt = LoadModel(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kIOError);
  EXPECT_NE(corrupt.status().ToString().find("crc32"), std::string::npos);

  // A wrong stored checksum over an intact payload is equally corrupt.
  {
    std::string bad = contents;
    const size_t pos = bad.rfind("#crc32 ");
    bad.replace(pos, std::string::npos, "#crc32 00000000\n");
    std::ofstream out(path, std::ios::binary);
    out << bad;
  }
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kIOError);

  // A malformed trailer (unparseable hex) is corrupt, not ignorable.
  {
    std::string bad = contents;
    const size_t pos = bad.rfind("#crc32 ");
    bad.replace(pos, std::string::npos, "#crc32 zzzz\n");
    std::ofstream out(path, std::ios::binary);
    out << bad;
  }
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kIOError);

  // Stripping the trailer entirely yields a legacy (pre-CRC) file, which
  // still loads: verification is opt-in by presence.
  {
    std::string legacy = contents;
    legacy.resize(legacy.rfind("#crc32 "));
    std::ofstream out(path, std::ios::binary);
    out << legacy;
  }
  EXPECT_TRUE(LoadModel(path).ok());
  std::filesystem::remove(path);
}

TEST(ModelIoTest, InjectedRenameFaultPreservesIncumbentFile) {
  Fixture f;
  const Workload train = f.Make(40, 911);
  auto built = EstimatorRegistry::Build("quadhist", 2, train.size());
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value()->Train(train).ok());
  const std::string path = TempPath("sel_rename_fault.model");
  ASSERT_TRUE(SaveModel(*built.value(), path).ok());
  const std::string before = Slurp(path);

  // A save that dies at the publication rename must leave the previous
  // file byte-for-byte intact and clean up its staging temp.
  auto other = EstimatorRegistry::Build("ptshist", 2, train.size());
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(other.value()->Train(train).ok());
  FaultRegistry::Global().Arm("io.save.rename");
  const Status st = SaveModel(*other.value(), path);
  FaultRegistry::Global().Disarm("io.save.rename");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(Slurp(path), before);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // With the fault gone the overwrite goes through atomically.
  ASSERT_TRUE(SaveModel(*other.value(), path).ok());
  EXPECT_NE(Slurp(path), before);
  std::filesystem::remove(path);
}

TEST(ModelIoTest, CommentsAndBlankLinesTolerated) {
  const std::string path = TempPath("sel_comments.model");
  {
    std::ofstream out(path);
    out << "# a comment\n\n"
        << "selmodel 1 points 2 2\n"
        << "# another\n"
        << "point 0.2 0.2 0.5\n\n"
        << "point 0.8 0.8 0.5\n";
  }
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->NumBuckets(), 2u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sel
