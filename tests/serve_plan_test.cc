// Plan-equivalence suite for the serving layer (DESIGN.md §11): every
// lowerable estimator's CompiledPlan must reproduce the virtual
// Estimate path within 1e-12 across query shapes, seeds, and thread
// counts; plans must survive the model_io round-trip bit-identically;
// and OnlineEstimator's plan hand-off must keep serving during a
// retrain (the TSAN lane checks the hand-off is race-free).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "sel/sel.h"

namespace sel {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SemiAlgebraicSet Disc(double cx, double cy, double r) {
  const int d = 2;
  const Polynomial x = Polynomial::Variable(d, 0);
  const Polynomial y = Polynomial::Variable(d, 1);
  const Polynomial p = (x - Polynomial::Constant(d, cx)) *
                           (x - Polynomial::Constant(d, cx)) +
                       (y - Polynomial::Constant(d, cy)) *
                           (y - Polynomial::Constant(d, cy)) -
                       Polynomial::Constant(d, r * r);
  return SemiAlgebraicSet::Atom(p);
}

struct Fixture {
  Fixture()
      : data(MakePowerLike(3000, 1300).Project({0, 1})),
        index(data.rows()) {}

  Workload MakeTrain(size_t n, uint64_t seed) const {
    WorkloadOptions opts;
    opts.seed = seed;
    WorkloadGenerator gen(&data, &index, opts);
    return gen.Generate(n);
  }

  std::vector<Query> MakeProbes(QueryType type, size_t n,
                                uint64_t seed) const {
    if (type == QueryType::kSemiAlgebraic) {
      Rng rng(seed);
      std::vector<Query> qs;
      for (size_t i = 0; i < n; ++i) {
        const double cx = rng.Uniform(0.2, 0.8);
        const double cy = rng.Uniform(0.2, 0.8);
        const double r = rng.Uniform(0.15, 0.45);
        qs.push_back(SemiAlgebraicSet::And(
            Disc(cx, cy, r),
            SemiAlgebraicSet::Not(Disc(cx + r / 2, cy, r * 0.7))));
      }
      return qs;
    }
    WorkloadOptions opts;
    opts.query_type = type;
    opts.seed = seed;
    WorkloadGenerator gen(&data, &index, opts);
    std::vector<Query> qs;
    for (const auto& z : gen.Generate(n)) qs.push_back(z.query);
    return qs;
  }

  Dataset data;
  CountingKdTree index;
};

// Every lowerable estimator, every query shape its virtual path serves,
// two training seeds: |plan - virtual| <= 1e-12 per query, and the
// batch kernel agrees with EstimateOne bit for bit at 1 and 8 threads.
TEST(ServePlanTest, PlanMatchesVirtualPathEverywhere) {
  Fixture f;
  struct Case {
    const char* name;
    std::vector<QueryType> shapes;
  };
  // ISOMER's and QuickSel's paper scope is orthogonal ranges; the
  // learners serve every shape in the library.
  const std::vector<Case> cases = {
      {"quadhist",
       {QueryType::kBox, QueryType::kHalfspace, QueryType::kBall,
        QueryType::kSemiAlgebraic}},
      {"ptshist",
       {QueryType::kBox, QueryType::kHalfspace, QueryType::kBall,
        QueryType::kSemiAlgebraic}},
      {"quicksel", {QueryType::kBox}},
      {"isomer", {QueryType::kBox}},
  };
  for (const Case& c : cases) {
    for (uint64_t seed : {901u, 902u}) {
      const Workload train = f.MakeTrain(80, seed);
      auto built = EstimatorRegistry::Build(c.name, 2, train.size());
      ASSERT_TRUE(built.ok()) << c.name << ": "
                              << built.status().ToString();
      SelectivityModel& model = *built.value();
      ASSERT_TRUE(model.Train(train).ok()) << c.name;
      auto plan = model.Compile();
      ASSERT_TRUE(plan.ok()) << c.name << ": " << plan.status().ToString();
      EXPECT_EQ(plan.value().dim(), 2) << c.name;
      EXPECT_EQ(plan.value().source(), c.name);
      EXPECT_GT(plan.value().size(), 0u) << c.name;

      for (QueryType shape : c.shapes) {
        const std::vector<Query> probes =
            f.MakeProbes(shape, 25, seed + 17);
        std::vector<double> one(probes.size());
        for (size_t i = 0; i < probes.size(); ++i) {
          one[i] = plan.value().EstimateOne(probes[i]);
          const double virt = model.Estimate(probes[i]);
          EXPECT_NEAR(one[i], virt, 1e-12)
              << c.name << " seed=" << seed << " shape "
              << QueryTypeName(shape) << " query " << i;
          EXPECT_GE(one[i], 0.0);
          EXPECT_LE(one[i], 1.0);
        }
        // The batch kernel is the same arithmetic, any thread count.
        for (int threads : {1, 8}) {
          ThreadPool pool(threads);
          ScopedPoolOverride scope(&pool);
          const std::vector<double> many =
              plan.value().EstimateMany(probes);
          ASSERT_EQ(many.size(), one.size());
          for (size_t i = 0; i < many.size(); ++i) {
            EXPECT_EQ(many[i], one[i])
                << c.name << " shape " << QueryTypeName(shape)
                << " threads=" << threads << " query " << i;
          }
        }
      }
    }
  }
}

// The always-fitted static forms lower directly.
TEST(ServePlanTest, StaticFormsLower) {
  StaticHistogram h({Box({0.0, 0.0}, {0.5, 1.0}), Box({0.5, 0.0}, {1.0, 1.0})},
                    {0.8, 0.2});
  auto hp = h.Compile();
  ASSERT_TRUE(hp.ok()) << hp.status().ToString();
  StaticPointModel p({{0.25, 0.25}, {0.75, 0.75}}, {0.3, 0.7});
  auto pp = p.Compile();
  ASSERT_TRUE(pp.ok()) << pp.status().ToString();
  for (const Query& q :
       {Query(Box({0.0, 0.0}, {0.5, 1.0})), Query(Box({0.1, 0.2}, {0.9, 0.7})),
        Query(Box::Unit(2))}) {
    EXPECT_NEAR(hp.value().EstimateOne(q), h.Estimate(q), 1e-12);
    EXPECT_NEAR(pp.value().EstimateOne(q), p.Estimate(q), 1e-12);
  }
}

// GMM and AVI have no flat bucket form; Compile says so instead of
// silently mis-lowering.
TEST(ServePlanTest, NonLowerableEstimatorsReportUnimplemented) {
  GmmModel gmm(2, GmmOptions{});
  EXPECT_EQ(gmm.Compile().status().code(), StatusCode::kUnimplemented);
  AviHistogram avi(2, AviOptions{});
  EXPECT_EQ(avi.Compile().status().code(), StatusCode::kUnimplemented);
  // Untrained lowerable models fail with FailedPrecondition, and the
  // failure is NOT cached: training afterwards makes Compile succeed.
  QuadHist qh(2, QuadHistOptions{});
  EXPECT_EQ(qh.Compile().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(qh.shared_plan(), nullptr);
  Fixture f;
  ASSERT_TRUE(qh.Train(f.MakeTrain(40, 1401)).ok());
  EXPECT_NE(qh.shared_plan(), nullptr);
}

// Zero-volume buckets lower to point entries at their centers and
// zero-weight buckets are dropped — the plan still reproduces
// QueryBoxFraction's degenerate limit.
TEST(ServePlanTest, DegenerateAndZeroWeightBuckets) {
  const std::vector<Box> buckets = {
      Box({0.0, 0.0}, {0.5, 1.0}),   // proper
      Box({0.7, 0.2}, {0.7, 0.4}),   // zero volume -> point at center
      Box({0.2, 0.2}, {0.4, 0.4}),   // zero weight -> dropped
  };
  auto plan = CompiledPlan::FromBoxBuckets(buckets, {0.5, 0.3, 0.0},
                                           VolumeOptions{}, "test");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().num_box_entries(), 1u);
  EXPECT_EQ(plan.value().num_point_entries(), 1u);
  // Query containing the degenerate bucket's center picks up its weight.
  EXPECT_NEAR(plan.value().EstimateOne(Box({0.6, 0.1}, {0.8, 0.5})), 0.3,
              1e-15);
  // Full domain: 0.5 + 0.3 (the zero-weight bucket contributes nothing).
  EXPECT_NEAR(plan.value().EstimateOne(Box::Unit(2)), 0.8, 1e-15);
}

// Compiled plans survive save -> load with bit-identical estimates and
// save -> load -> save with bit-identical bytes (the canonical tree
// build is a pure function of the entry multiset).
TEST(ServePlanTest, ModelIoRoundTripIsExact) {
  Fixture f;
  const Workload train = f.MakeTrain(80, 905);
  for (const char* name : {"quadhist", "ptshist"}) {
    auto built = EstimatorRegistry::Build(name, 2, train.size());
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE(built.value()->Train(train).ok()) << name;
    auto plan = built.value()->Compile();
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    PlanModel original(std::move(plan).value());

    const std::string path = TempPath(std::string("sel_plan_") + name +
                                      ".model");
    ASSERT_TRUE(SaveModel(original, path).ok()) << name;
    auto loaded = LoadModel(path);
    ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded.value()->RegistryName(), "plan");
    EXPECT_EQ(loaded.value()->NumBuckets(), original.NumBuckets()) << name;

    for (const Query& q : f.MakeProbes(QueryType::kBox, 40, 906)) {
      EXPECT_EQ(loaded.value()->Estimate(q), original.Estimate(q)) << name;
    }

    const std::string path2 = TempPath(std::string("sel_plan_") + name +
                                       "_2.model");
    ASSERT_TRUE(SaveModel(*loaded.value(), path2).ok()) << name;
    auto slurp = [](const std::string& p) {
      std::ifstream in(p);
      std::stringstream ss;
      ss << in.rdbuf();
      return ss.str();
    };
    EXPECT_EQ(slurp(path), slurp(path2))
        << name << ": save->load->save is not byte-stable";
    std::filesystem::remove(path);
    std::filesystem::remove(path2);
  }
}

// The pruning tree must actually prune: a tiny query visits far fewer
// entries than the plan holds, and the accounting is aggregated across
// a batch.
TEST(ServePlanTest, PruningStatsShowSkippedEntries) {
  Fixture f;
  const Workload train = f.MakeTrain(150, 907);
  auto built = EstimatorRegistry::Build("ptshist", 2, train.size());
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value()->Train(train).ok());
  auto plan = built.value()->Compile();
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan.value().size(), 64u) << "fixture too small to prune";

  PlanEvalStats tiny;
  (void)plan.value().EstimateOne(Box({0.4, 0.4}, {0.41, 0.41}), &tiny);
  EXPECT_EQ(tiny.entries_total, plan.value().size());
  EXPECT_LT(tiny.entries_visited, tiny.entries_total);
  EXPECT_GT(tiny.PruneRatio(), 0.0);

  const std::vector<Query> probes = f.MakeProbes(QueryType::kBox, 20, 908);
  PlanEvalStats batch;
  (void)plan.value().EstimateMany(probes, &batch);
  EXPECT_EQ(batch.entries_total, plan.value().size() * probes.size());
  EXPECT_LE(batch.entries_visited, batch.entries_total);
}

// SEL_SERVE_PLAN / SetServePlanEnabled gates the automatic serving path
// (shared_plan), never the explicit Compile.
TEST(ServePlanTest, ServePlanKnobGatesSharedPlanOnly) {
  Fixture f;
  QuadHist model(2, QuadHistOptions{});
  ASSERT_TRUE(model.Train(f.MakeTrain(40, 909)).ok());
  SetServePlanEnabled(false);
  EXPECT_EQ(model.shared_plan(), nullptr);
  EXPECT_TRUE(model.Compile().ok()) << "knob must not gate Compile()";
  SetServePlanEnabled(true);
  const auto plan = model.shared_plan();
  ASSERT_NE(plan, nullptr);
  // The cache hands out the same plan every time.
  EXPECT_EQ(model.shared_plan().get(), plan.get());
}

// Malformed queries (non-finite parameters; every ctor-constructible
// degenerate form) must not poison the serving arithmetic: the plan
// path answers the empty-range 0 and the checked virtual path rejects
// with InvalidArgument, both counted under serve.invalid_query_total.
TEST(ServePlanTest, MalformedQueriesAreRejectedNotPoisonous) {
  Fixture f;
  QuadHist model(2, QuadHistOptions{});
  ASSERT_TRUE(model.Train(f.MakeTrain(40, 911)).ok());
  SetServePlanEnabled(true);
  const auto plan = model.shared_plan();
  ASSERT_NE(plan, nullptr);

  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<Query> bad = {
      Box({0.0, 0.0}, {1.0, inf}),    // unbounded corner
      Box({-inf, 0.0}, {1.0, 1.0}),   // unbounded corner, low side
      Halfspace({1.0, 0.0}, inf),     // non-finite offset
      Halfspace({1.0, 0.0}, nan),     // NaN offset
      Ball({nan, 0.5}, 0.25),         // NaN center
      Ball({0.5, 0.5}, inf),          // infinite radius
  };
  for (size_t i = 0; i < bad.size(); ++i) {
    EXPECT_FALSE(QueryIsValid(bad[i])) << "query " << i;
    // Plan path: sanitized to the empty-range answer, never NaN.
    EXPECT_EQ(plan->EstimateOne(bad[i]), 0.0) << "query " << i;
    // Checked virtual path: an explicit rejection the caller can see.
    auto checked = model.TryEstimate(bad[i]);
    ASSERT_FALSE(checked.ok()) << "query " << i;
    EXPECT_EQ(checked.status().code(), StatusCode::kInvalidArgument)
        << "query " << i;
  }
  // The batch kernel inherits the per-query sanitization.
  const std::vector<double> many = plan->EstimateMany(bad);
  for (size_t i = 0; i < many.size(); ++i) {
    EXPECT_EQ(many[i], 0.0) << "query " << i;
  }

  // Well-formed queries flow through both paths unchanged.
  const Query good = Box({0.2, 0.2}, {0.7, 0.7});
  ASSERT_TRUE(QueryIsValid(good));
  auto checked = model.TryEstimate(good);
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(checked.value(), model.Estimate(good));
}

// Serving never blocks on retraining: readers hammer Estimate while the
// feedback loop forces several retrains; every observed estimate is
// valid and the hand-off lands a fresh plan. The TSAN lane turns any
// torn or unsynchronized hand-off into a hard failure.
TEST(ServePlanTest, OnlineServingUninterruptedAcrossRetrain) {
  SetServePlanEnabled(true);
  Fixture f;
  OnlineOptions opts;
  opts.retrain_interval = 25;
  opts.estimator = "quadhist";
  auto online = OnlineEstimator::Create(2, opts);
  ASSERT_TRUE(online.ok()) << online.status().ToString();
  OnlineEstimator& est = *online.value();

  const Workload feed = f.MakeTrain(150, 910);
  const Query probe = Box({0.2, 0.2}, {0.7, 0.7});

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<bool> bad{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const double v = est.Estimate(probe);
        if (!(v >= 0.0 && v <= 1.0)) bad.store(true);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Collect statuses and join the readers BEFORE asserting: a failed
  // assertion returns from the test body, and destroying a joinable
  // std::thread calls std::terminate — under fault injection (which
  // legitimately fails Retrain) that would turn an ordinary test
  // failure into an abort.
  Status feed_status = Status::OK();
  for (const auto& z : feed) {
    feed_status = est.Feedback(z.query, z.selectivity);
    if (!feed_status.ok()) break;
  }
  const Status retrain_status =
      feed_status.ok() ? est.Retrain() : Status::OK();
  stop.store(true);
  for (auto& t : readers) t.join();

  ASSERT_TRUE(feed_status.ok()) << feed_status.ToString();
  ASSERT_TRUE(retrain_status.ok()) << retrain_status.ToString();
  EXPECT_FALSE(bad.load()) << "a reader saw an out-of-range estimate";
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GE(est.retrain_count(), 5u);
  EXPECT_TRUE(est.trained());
  // quadhist lowers, so the swapped-in state carries a plan (the knob
  // defaults to on; earlier tests restore it).
  EXPECT_NE(est.serving_plan(), nullptr);
}

}  // namespace
}  // namespace sel
