// Wire-protocol unit tests (DESIGN.md §14): primitive round trips are
// bit-exact, frame headers reject every malformation class, and query
// decoding validates raw parameters BEFORE any geometry object exists —
// the constructors abort on bad input, so the decoder must never reach
// them with it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "sel/sel.h"

namespace sel {
namespace {

TEST(WirePrimitives, RoundTripBitExact) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU16(&buf, 0xBEEF);
  PutU32(&buf, 0xDEADBEEFu);
  PutU64(&buf, 0x0123456789ABCDEFull);
  const double values[] = {0.0, -0.0, 1.5, -2.25e-300,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (double v : values) PutF64(&buf, v);

  WireReader r(buf);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  for (double v : values) {
    double got;
    ASSERT_TRUE(r.ReadF64(&got).ok());
    // Bit identity, not ==: -0.0 and NaN must survive the wire.
    EXPECT_EQ(std::memcmp(&got, &v, sizeof(double)), 0);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(WirePrimitives, ReaderRejectsReadPastEnd) {
  std::string buf;
  PutU16(&buf, 7);
  WireReader r(buf);
  uint32_t v;
  const Status st = r.ReadU32(&v);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // A failed read does not advance: the u16 is still there.
  uint16_t u16;
  EXPECT_TRUE(r.ReadU16(&u16).ok());
  EXPECT_EQ(u16, 7);
}

TEST(FrameHeader, RoundTrip) {
  Frame frame;
  frame.type = FrameType::kEstimateBatch;
  frame.status = WireStatus::kOk;
  frame.payload = "hello";
  const std::string wire = EncodeFrame(frame);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + 5);
  Frame decoded;
  uint32_t payload_len = 0;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(wire.data()), &decoded,
                  &payload_len)
                  .ok());
  EXPECT_EQ(decoded.type, FrameType::kEstimateBatch);
  EXPECT_EQ(decoded.status, WireStatus::kOk);
  EXPECT_EQ(payload_len, 5u);
}

TEST(FrameHeader, RejectsEveryMalformationClass) {
  Frame frame;
  frame.type = FrameType::kPing;
  const std::string good = EncodeFrame(frame);
  Frame out;
  uint32_t len;

  auto corrupt = [&](size_t offset, uint8_t value) {
    std::string bad = good;
    bad[offset] = static_cast<char>(value);
    return DecodeFrameHeader(reinterpret_cast<const uint8_t*>(bad.data()),
                             &out, &len);
  };
  EXPECT_FALSE(corrupt(0, 0xFF).ok());  // magic
  EXPECT_FALSE(corrupt(4, 99).ok());    // version
  EXPECT_FALSE(corrupt(5, 0).ok());     // type 0 undefined
  EXPECT_FALSE(corrupt(5, 99).ok());    // type out of range
  // Oversized payload length.
  std::string bad = good;
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&bad[8], &huge, sizeof(huge));
  EXPECT_FALSE(DecodeFrameHeader(
                   reinterpret_cast<const uint8_t*>(bad.data()), &out, &len)
                   .ok());
}

TEST(QueryCodec, BoxHalfspaceBallRoundTrip) {
  const Query queries[] = {
      Query(Box({0.1, 0.2}, {0.8, 0.9})),
      Query(Halfspace({0.5, -1.25}, 0.75)),
      Query(Ball({0.5, 0.5}, 0.25)),
  };
  for (const Query& q : queries) {
    std::string buf;
    ASSERT_TRUE(EncodeQuery(q, &buf).ok());
    WireReader r(buf);
    Result<Query> decoded = DecodeQuery(&r);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(decoded.value().type(), q.type());
    EXPECT_EQ(decoded.value().dim(), q.dim());
  }
}

TEST(QueryCodec, SemiAlgebraicIsUnimplemented) {
  const Polynomial x = Polynomial::Variable(2, 0);
  const Query q(SemiAlgebraicSet::Atom(x));
  std::string buf;
  EXPECT_EQ(EncodeQuery(q, &buf).code(), StatusCode::kUnimplemented);
}

// The decoder must reject raw parameters the geometry constructors
// would abort on — reaching a constructor with them is the bug.
TEST(QueryCodec, RejectsConstructorHostileParams) {
  auto decode = [](const std::string& buf) {
    WireReader r(buf);
    return DecodeQuery(&r).status().code();
  };
  std::string buf;

  // Inverted box interval.
  buf.clear();
  PutU8(&buf, 1);
  PutU16(&buf, 1);
  PutF64(&buf, 0.9);  // lo > hi
  PutF64(&buf, 0.1);
  EXPECT_EQ(decode(buf), StatusCode::kInvalidArgument);

  // Non-finite box bound.
  buf.clear();
  PutU8(&buf, 1);
  PutU16(&buf, 1);
  PutF64(&buf, std::nan(""));
  PutF64(&buf, 0.5);
  EXPECT_EQ(decode(buf), StatusCode::kInvalidArgument);

  // Zero-normal halfspace.
  buf.clear();
  PutU8(&buf, 2);
  PutU16(&buf, 2);
  PutF64(&buf, 0.0);
  PutF64(&buf, 0.0);
  PutF64(&buf, 0.3);
  EXPECT_EQ(decode(buf), StatusCode::kInvalidArgument);

  // Negative ball radius.
  buf.clear();
  PutU8(&buf, 3);
  PutU16(&buf, 1);
  PutF64(&buf, 0.5);
  PutF64(&buf, -0.25);
  EXPECT_EQ(decode(buf), StatusCode::kInvalidArgument);

  // Unknown tag.
  buf.clear();
  PutU8(&buf, 9);
  PutU16(&buf, 1);
  EXPECT_EQ(decode(buf), StatusCode::kInvalidArgument);

  // Absurd dimension (allocation bomb guard).
  buf.clear();
  PutU8(&buf, 1);
  PutU16(&buf, 5000);
  EXPECT_EQ(decode(buf), StatusCode::kInvalidArgument);

  // Truncated parameters.
  buf.clear();
  PutU8(&buf, 1);
  PutU16(&buf, 2);
  PutF64(&buf, 0.1);  // 3 of 4 doubles missing
  EXPECT_EQ(decode(buf), StatusCode::kInvalidArgument);
}

TEST(WireStatusMapping, RoundTripsThroughStatusCodes) {
  EXPECT_EQ(WireStatusFromCode(StatusCode::kOk), WireStatus::kOk);
  EXPECT_EQ(WireStatusFromCode(StatusCode::kInvalidArgument),
            WireStatus::kInvalidArgument);
  EXPECT_EQ(WireStatusFromCode(StatusCode::kUnimplemented),
            WireStatus::kUnimplemented);
  EXPECT_EQ(StatusCodeFromWire(WireStatus::kResourceExhausted),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(StatusCodeFromWire(WireStatus::kDeadlineExceeded),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(StatusCodeFromWire(WireStatus::kInvalidArgument),
            StatusCode::kInvalidArgument);
  // Every wire status has a printable name.
  for (uint8_t s = 0; s <= 6; ++s) {
    EXPECT_NE(std::string(WireStatusName(static_cast<WireStatus>(s))),
              "");
  }
}

}  // namespace
}  // namespace sel
