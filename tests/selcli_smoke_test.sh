#!/usr/bin/env bash
# End-to-end smoke test for selcli: generate data and a workload, then
# train / evaluate / estimate with every registered estimator. Savable
# estimators must complete the full loop; transient ones must fail the
# train step with the registry's capability error.
set -u

SELCLI="${1:?usage: selcli_smoke_test.sh <path-to-selcli>}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT
cd "${WORKDIR}"

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

run() {
  "${SELCLI}" "$@" || fail "selcli $* exited non-zero"
}

run gen-data power 4000 data.csv 7100
run gen-workload data.csv 120 train.csv box data 7101
run gen-workload data.csv 60 test.csv box data 7102

# The registry enumerates itself; scrape the name column.
"${SELCLI}" estimators > estimators.txt || fail "selcli estimators failed"
NAMES="$(awk 'NR > 1 { print $1 }' estimators.txt)"
[ -n "${NAMES}" ] || fail "selcli estimators listed nothing"
for required in quadhist ptshist gmm quicksel; do
  echo "${NAMES}" | grep -qx "${required}" \
    || fail "estimator '${required}' missing from selcli estimators"
done

for name in ${NAMES}; do
  savable="$(awk -v n="${name}" '$1 == n { print $4 }' estimators.txt)"
  if [ "${name}" = "static" ] || [ "${name}" = "staticpoints" ] \
      || [ "${name}" = "plan" ]; then
    # Static models and compiled plans are savable but immutable:
    # training must fail with the model's own contract error, not a
    # crash.
    if "${SELCLI}" train train.csv "${name}.model" "${name}" \
        > out.txt 2> err.txt; then
      fail "train ${name} should have failed (immutable model)"
    fi
    grep -q "immutable" err.txt \
      || fail "train ${name} missing immutability error: $(cat err.txt)"
  elif [ "${savable}" = "yes" ]; then
    run train train.csv "${name}.model" "${name}"
    [ -s "${name}.model" ] || fail "train ${name} wrote no model file"
    run evaluate "${name}.model" test.csv
    # The power dataset has 7 attributes; unmentioned ones stay [0,1].
    est="$("${SELCLI}" estimate "${name}.model" c0,c1,c2,c3,c4,c5,c6 \
          'c0 < 0.5 AND c1 < 0.5')" \
      || fail "estimate with ${name} exited non-zero"
    awk -v e="${est}" 'BEGIN { exit !(e >= 0.0 && e <= 1.0) }' \
      || fail "estimate with ${name} out of [0,1]: ${est}"
  else
    if "${SELCLI}" train train.csv "${name}.model" "${name}" \
        > out.txt 2> err.txt; then
      fail "train ${name} should have failed (no save support)"
    fi
    grep -q "does not support serialization" err.txt \
      || fail "train ${name} missing capability error: $(cat err.txt)"
  fi
done

# Unknown estimators fail with the registry's name listing — and with
# the InvalidArgument exit code (3), not a generic 1.
"${SELCLI}" train train.csv x.model nosuchmodel > out.txt 2> err.txt
rc=$?
[ "${rc}" -eq 3 ] \
  || fail "unknown estimator should exit 3 (InvalidArgument), got ${rc}"
grep -q "unknown estimator 'nosuchmodel'" err.txt \
  || fail "unknown-estimator error not from registry: $(cat err.txt)"
[ -s out.txt ] && fail "unknown-estimator error leaked to stdout"

# Corrupt model files are IOError (exit 10), reported on stderr.
printf 'selmodel 1 static 2 3\nbox 0 0 1 nan 0.5\n' > corrupt.model
"${SELCLI}" evaluate corrupt.model test.csv > out.txt 2> err.txt
rc=$?
[ "${rc}" -eq 10 ] \
  || fail "corrupt model should exit 10 (IOError), got ${rc}"
grep -q "error:" err.txt \
  || fail "corrupt-model failure missing stderr diagnostic: $(cat err.txt)"

# Truncated model (fewer records than the header promises) is IOError too.
head -n 2 quadhist.model > truncated.model
"${SELCLI}" evaluate truncated.model test.csv > out.txt 2> err.txt
rc=$?
[ "${rc}" -eq 10 ] \
  || fail "truncated model should exit 10 (IOError), got ${rc}"

# --- Serving plans: selcli compile lowers a trained model file. ---

# Lower the trained quadhist model to its flat serving form; the plan
# file must load and serve like any model.
run compile quadhist.model quadhist.plan
[ -s quadhist.plan ] || fail "compile wrote no plan file"
head -n 5 quadhist.plan | grep -q "selmodel 1 plan" \
  || fail "plan file missing its header: $(head -n 5 quadhist.plan)"
run evaluate quadhist.plan test.csv
est_model="$("${SELCLI}" estimate quadhist.model c0,c1,c2,c3,c4,c5,c6 \
      'c0 < 0.5 AND c1 < 0.5')" || fail "estimate via model failed"
est_plan="$("${SELCLI}" estimate quadhist.plan c0,c1,c2,c3,c4,c5,c6 \
      'c0 < 0.5 AND c1 < 0.5')" || fail "estimate via plan failed"
# The two paths may differ in summation order only; at %.6f printing
# they must agree to the last printed digit (tolerance one ulp there).
awk -v a="${est_model}" -v b="${est_plan}" \
  'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d <= 1e-6) }' \
  || fail "plan estimate ${est_plan} != model estimate ${est_model}"

# Compiling a non-lowerable model is Unimplemented (exit 8), not a crash.
run train train.csv gmm_c.model gmm
"${SELCLI}" compile gmm_c.model gmm.plan > out.txt 2> err.txt
rc=$?
[ "${rc}" -eq 8 ] \
  || fail "compiling gmm should exit 8 (Unimplemented), got ${rc}"
grep -q "non-lowerable" err.txt \
  || fail "gmm compile missing non-lowerable error: $(cat err.txt)"

# --- Observability: the stats subcommand and the SEL_TRACE knob. ---

# stats trains + predicts with the metrics registry on and must report
# the core counters and latency histograms of that run, plus a CSV dump.
run stats train.csv quadhist metrics.csv > stats.txt
for needle in "solver.solves_total" "predict.queries_total" \
              "histogram predict.query_us" "histogram train.solve_us"; do
  grep -q "${needle}" stats.txt \
    || fail "selcli stats missing '${needle}': $(cat stats.txt)"
done
[ -s metrics.csv ] || fail "selcli stats wrote no metrics CSV"
head -n 1 metrics.csv | grep -q "^kind,name,count,value,sum,mean,p50,p95,p99$" \
  || fail "metrics CSV header wrong: $(head -n 1 metrics.csv)"
# Rectangular CSV: every row has the header's column count.
awk -F, 'NR == 1 { n = NF } NF != n { exit 1 }' metrics.csv \
  || fail "metrics CSV is ragged"

# The happy-path run must never have degraded to the uniform fallback.
grep -q "solver.fallback.uniform" stats.txt \
  && fail "happy-path stats run hit the uniform fallback"

# SEL_TRACE must produce Chrome-tracing JSON at the given path.
SEL_TRACE=trace.json "${SELCLI}" stats train.csv quadhist > /dev/null \
  || fail "selcli stats under SEL_TRACE exited non-zero"
[ -s trace.json ] || fail "SEL_TRACE produced no trace file"
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'EOF' || fail "SEL_TRACE output is not valid Chrome trace JSON"
import json, sys
with open("trace.json") as f:
    d = json.load(f)
events = d["traceEvents"]
assert events, "no trace events"
names = {e["name"] for e in events if e.get("ph") == "X"}
assert "train.solve_weights" in names, names
assert "predict.batch" in names, names
for e in events:
    assert e["ph"] in ("X", "M"), e
    if e["ph"] == "X":
        assert e["dur"] >= 0 and "ts" in e and "tid" in e, e
EOF
else
  # Structural fallback when python3 is unavailable.
  grep -q '"traceEvents"' trace.json || fail "trace JSON missing traceEvents"
  grep -q '"ph":"X"' trace.json || fail "trace JSON has no complete events"
  grep -q 'train.solve_weights' trace.json \
    || fail "trace JSON missing the solver span"
fi

# stats --json emits one machine-readable document and nothing else.
"${SELCLI}" stats train.csv quadhist --json > stats.json \
  || fail "selcli stats --json exited non-zero"
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'EOF' || fail "stats --json output is not valid JSON"
import json
with open("stats.json") as f:
    d = json.load(f)
assert "counters" in d and "gauges" in d and "histograms" in d, d.keys()
EOF
else
  grep -q '"counters"' stats.json || fail "stats --json missing counters"
  grep -q '"histograms"' stats.json || fail "stats --json missing histograms"
fi

# Network round trip: serve in the background, query over TCP, then a
# graceful SIGTERM drain that must exit 0.
"${SELCLI}" serve train.csv quadhist --port 0 > serve_out.txt 2>&1 &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          serve_out.txt)"
  [ -n "${PORT}" ] && break
  kill -0 "${SERVE_PID}" 2> /dev/null || break
  sleep 0.1
done
[ -n "${PORT}" ] || { cat serve_out.txt; fail "serve never announced a port"; }

ping_out="$("${SELCLI}" query "127.0.0.1:${PORT}" --ping)" \
  || fail "query --ping exited non-zero"
[ "${ping_out}" = "pong" ] || fail "ping said: ${ping_out}"

net_est="$("${SELCLI}" query "127.0.0.1:${PORT}" c0,c1,c2,c3,c4,c5,c6 \
      'c0 < 0.5 AND c1 < 0.5')" || fail "query estimate exited non-zero"
awk -v e="${net_est}" 'BEGIN { exit !(e >= 0.0 && e <= 1.0) }' \
  || fail "query estimate out of [0,1]: ${net_est}"

fb_out="$("${SELCLI}" query "127.0.0.1:${PORT}" c0,c1,c2,c3,c4,c5,c6 \
      'c0 < 0.5 AND c1 < 0.5' --feedback 0.25)" \
  || fail "query --feedback exited non-zero"
[ "${fb_out}" = "feedback recorded" ] || fail "feedback said: ${fb_out}"

"${SELCLI}" query "127.0.0.1:${PORT}" --stats > netstats.json \
  || fail "query --stats exited non-zero"
grep -q '"server.requests_total"' netstats.json \
  || fail "server stats missing request counter: $(head -c 200 netstats.json)"

kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}"
rc=$?
[ "${rc}" -eq 0 ] || { cat serve_out.txt; fail "serve drain exited ${rc}"; }
grep -q "draining" serve_out.txt || fail "serve never reported draining"
grep -q "server drained" serve_out.txt || fail "serve never reported drained"

echo "selcli smoke test passed"
