#!/usr/bin/env bash
# End-to-end smoke test for selcli: generate data and a workload, then
# train / evaluate / estimate with every registered estimator. Savable
# estimators must complete the full loop; transient ones must fail the
# train step with the registry's capability error.
set -u

SELCLI="${1:?usage: selcli_smoke_test.sh <path-to-selcli>}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT
cd "${WORKDIR}"

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

run() {
  "${SELCLI}" "$@" || fail "selcli $* exited non-zero"
}

run gen-data power 4000 data.csv 7100
run gen-workload data.csv 120 train.csv box data 7101
run gen-workload data.csv 60 test.csv box data 7102

# The registry enumerates itself; scrape the name column.
"${SELCLI}" estimators > estimators.txt || fail "selcli estimators failed"
NAMES="$(awk 'NR > 1 { print $1 }' estimators.txt)"
[ -n "${NAMES}" ] || fail "selcli estimators listed nothing"
for required in quadhist ptshist gmm quicksel; do
  echo "${NAMES}" | grep -qx "${required}" \
    || fail "estimator '${required}' missing from selcli estimators"
done

for name in ${NAMES}; do
  savable="$(awk -v n="${name}" '$1 == n { print $4 }' estimators.txt)"
  if [ "${name}" = "static" ] || [ "${name}" = "staticpoints" ]; then
    # Static models are savable but immutable: training must fail with
    # the model's own contract error, not a crash.
    if "${SELCLI}" train train.csv "${name}.model" "${name}" \
        > out.txt 2> err.txt; then
      fail "train ${name} should have failed (immutable model)"
    fi
    grep -q "immutable" err.txt \
      || fail "train ${name} missing immutability error: $(cat err.txt)"
  elif [ "${savable}" = "yes" ]; then
    run train train.csv "${name}.model" "${name}"
    [ -s "${name}.model" ] || fail "train ${name} wrote no model file"
    run evaluate "${name}.model" test.csv
    # The power dataset has 7 attributes; unmentioned ones stay [0,1].
    est="$("${SELCLI}" estimate "${name}.model" c0,c1,c2,c3,c4,c5,c6 \
          'c0 < 0.5 AND c1 < 0.5')" \
      || fail "estimate with ${name} exited non-zero"
    awk -v e="${est}" 'BEGIN { exit !(e >= 0.0 && e <= 1.0) }' \
      || fail "estimate with ${name} out of [0,1]: ${est}"
  else
    if "${SELCLI}" train train.csv "${name}.model" "${name}" \
        > out.txt 2> err.txt; then
      fail "train ${name} should have failed (no save support)"
    fi
    grep -q "does not support serialization" err.txt \
      || fail "train ${name} missing capability error: $(cat err.txt)"
  fi
done

# Unknown estimators fail with the registry's name listing — and with
# the InvalidArgument exit code (3), not a generic 1.
"${SELCLI}" train train.csv x.model nosuchmodel > out.txt 2> err.txt
rc=$?
[ "${rc}" -eq 3 ] \
  || fail "unknown estimator should exit 3 (InvalidArgument), got ${rc}"
grep -q "unknown estimator 'nosuchmodel'" err.txt \
  || fail "unknown-estimator error not from registry: $(cat err.txt)"
[ -s out.txt ] && fail "unknown-estimator error leaked to stdout"

# Corrupt model files are IOError (exit 10), reported on stderr.
printf 'selmodel 1 static 2 3\nbox 0 0 1 nan 0.5\n' > corrupt.model
"${SELCLI}" evaluate corrupt.model test.csv > out.txt 2> err.txt
rc=$?
[ "${rc}" -eq 10 ] \
  || fail "corrupt model should exit 10 (IOError), got ${rc}"
grep -q "error:" err.txt \
  || fail "corrupt-model failure missing stderr diagnostic: $(cat err.txt)"

# Truncated model (fewer records than the header promises) is IOError too.
head -n 2 quadhist.model > truncated.model
"${SELCLI}" evaluate truncated.model test.csv > out.txt 2> err.txt
rc=$?
[ "${rc}" -eq 10 ] \
  || fail "truncated model should exit 10 (IOError), got ${rc}"

echo "selcli smoke test passed"
