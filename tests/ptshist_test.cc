// Tests for PtsHist (§3.3): bucket sampling scheme, weight fitting, and
// estimation across query types and dimensions.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ptshist.h"
#include "data/generators.h"
#include "index/kdtree.h"
#include "eval_metrics/metrics.h"
#include "workload/workload.h"

namespace sel {
namespace {

Workload MakeWorkload(const Dataset& data, const CountingKdTree& index,
                      size_t n, uint64_t seed,
                      QueryType type = QueryType::kBox) {
  WorkloadOptions opts;
  opts.query_type = type;
  opts.seed = seed;
  WorkloadGenerator gen(&data, &index, opts);
  return gen.Generate(n);
}

TEST(PtsHistTest, ModelSizeDefaultsTo4xTrainingSize) {
  const Dataset data = MakeUniform(1000, 2, 100);
  CountingKdTree index(data.rows());
  const Workload w = MakeWorkload(data, index, 50, 101);
  PtsHist m(2, PtsHistOptions{});
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_EQ(m.NumBuckets(), 200u);
}

TEST(PtsHistTest, ExplicitModelSizeRespected) {
  const Dataset data = MakeUniform(1000, 2, 102);
  CountingKdTree index(data.rows());
  const Workload w = MakeWorkload(data, index, 50, 103);
  PtsHistOptions opts;
  opts.model_size = 77;
  PtsHist m(2, opts);
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_EQ(m.NumBuckets(), 77u);
}

TEST(PtsHistTest, BucketPointsInsideDomain) {
  const Dataset data = MakePowerLike(2000, 104).Project({0, 1});
  CountingKdTree index(data.rows());
  const Workload w = MakeWorkload(data, index, 60, 105);
  PtsHist m(2, PtsHistOptions{});
  ASSERT_TRUE(m.Train(w).ok());
  for (const auto& p : m.BucketPoints()) {
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(PtsHistTest, InteriorPointsLandInsideTheirRanges) {
  // With interior_fraction = 1 every bucket point must lie inside at
  // least one positive-selectivity training range (rejection sampling
  // from range interiors, App. A.2).
  const Dataset data = MakeUniform(2000, 2, 106);
  CountingKdTree index(data.rows());
  const Workload w = MakeWorkload(data, index, 40, 107);
  PtsHistOptions opts;
  opts.interior_fraction = 1.0;
  PtsHist m(2, opts);
  ASSERT_TRUE(m.Train(w).ok());
  size_t outside = 0;
  for (const auto& p : m.BucketPoints()) {
    bool in_some = false;
    for (const auto& z : w) {
      if (z.query.Contains(p)) {
        in_some = true;
        break;
      }
    }
    if (!in_some) ++outside;
  }
  // Rejection fallbacks are rare.
  EXPECT_LE(outside, m.NumBuckets() / 20);
}

TEST(PtsHistTest, ShareProportionalToSelectivity) {
  // Two disjoint ranges with selectivities 0.9 and 0.1: the dense range
  // should receive roughly 9x the interior points.
  Workload w;
  w.push_back({Box({0.0, 0.0}, {0.4, 0.4}), 0.9});
  w.push_back({Box({0.6, 0.6}, {1.0, 1.0}), 0.1});
  PtsHistOptions opts;
  opts.model_size = 1000;
  opts.interior_fraction = 1.0;
  PtsHist m(2, opts);
  ASSERT_TRUE(m.Train(w).ok());
  size_t in_dense = 0, in_sparse = 0;
  for (const auto& p : m.BucketPoints()) {
    if (w[0].query.Contains(p)) ++in_dense;
    if (w[1].query.Contains(p)) ++in_sparse;
  }
  EXPECT_NEAR(static_cast<double>(in_dense) / 1000.0, 0.9, 0.02);
  EXPECT_NEAR(static_cast<double>(in_sparse) / 1000.0, 0.1, 0.02);
}

TEST(PtsHistTest, UniformShareCoversUncoveredSpace) {
  // 10% uniform points (§3.3 step 2) allocate density to regions not
  // covered by any training query.
  Workload w;
  w.push_back({Box({0.0, 0.0}, {0.2, 0.2}), 0.5});
  PtsHistOptions opts;
  opts.model_size = 2000;
  opts.seed = 5;
  PtsHist m(2, opts);
  ASSERT_TRUE(m.Train(w).ok());
  size_t outside_query = 0;
  for (const auto& p : m.BucketPoints()) {
    if (!w[0].query.Contains(p)) ++outside_query;
  }
  EXPECT_GT(outside_query, 100u);  // ~10% of 2000
}

TEST(PtsHistTest, DeterministicGivenSeed) {
  const Dataset data = MakeUniform(1000, 3, 108);
  CountingKdTree index(data.rows());
  const Workload w = MakeWorkload(data, index, 30, 109);
  PtsHist a(3, PtsHistOptions{}), b(3, PtsHistOptions{});
  ASSERT_TRUE(a.Train(w).ok());
  ASSERT_TRUE(b.Train(w).ok());
  ASSERT_EQ(a.NumBuckets(), b.NumBuckets());
  for (size_t i = 0; i < a.NumBuckets(); ++i) {
    EXPECT_EQ(a.BucketPoints()[i], b.BucketPoints()[i]);
    EXPECT_EQ(a.BucketWeights()[i], b.BucketWeights()[i]);
  }
}

TEST(PtsHistTest, WeightsOnSimplexAndEstimatesBounded) {
  const Dataset data = MakePowerLike(2000, 110).Project({0, 1});
  CountingKdTree index(data.rows());
  const Workload w = MakeWorkload(data, index, 60, 111);
  PtsHist m(2, PtsHistOptions{});
  ASSERT_TRUE(m.Train(w).ok());
  double sum = 0.0;
  for (double x : m.BucketWeights()) {
    EXPECT_GE(x, -1e-12);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (const auto& z : MakeWorkload(data, index, 40, 112)) {
    const double e = m.Estimate(z.query);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST(PtsHistTest, AccuracyImprovesWithTrainingSize) {
  const Dataset data = MakePowerLike(4000, 113).Project({0, 1});
  CountingKdTree index(data.rows());
  const Workload test = MakeWorkload(data, index, 150, 114);
  double rms_small, rms_large;
  {
    PtsHist m(2, PtsHistOptions{});
    ASSERT_TRUE(m.Train(MakeWorkload(data, index, 20, 115)).ok());
    rms_small = EvaluateModel(m, test).rms;
  }
  {
    PtsHist m(2, PtsHistOptions{});
    ASSERT_TRUE(m.Train(MakeWorkload(data, index, 400, 116)).ok());
    rms_large = EvaluateModel(m, test).rms;
  }
  EXPECT_LT(rms_large, rms_small);
  EXPECT_LT(rms_large, 0.06);
}

TEST(PtsHistTest, ScalesToHighDimensions) {
  // §3.3/§4.4: PtsHist is the high-dimensional instantiation.
  const Dataset data = MakeForestLike(4000, 117).Project(
      {0, 1, 2, 3, 4, 5, 6, 7});
  CountingKdTree index(data.rows());
  const Workload train = MakeWorkload(data, index, 200, 118);
  const Workload test = MakeWorkload(data, index, 100, 119);
  PtsHist m(8, PtsHistOptions{});
  ASSERT_TRUE(m.Train(train).ok());
  EXPECT_LT(EvaluateModel(m, test).rms, 0.15);
}

TEST(PtsHistTest, HandlesBallAndHalfspaceQueries) {
  const Dataset data = MakeForestLike(3000, 120).Project({0, 1, 2, 3});
  CountingKdTree index(data.rows());
  for (QueryType qt : {QueryType::kBall, QueryType::kHalfspace}) {
    const Workload train = MakeWorkload(data, index, 150, 121, qt);
    const Workload test = MakeWorkload(data, index, 80, 122, qt);
    PtsHist m(4, PtsHistOptions{});
    ASSERT_TRUE(m.Train(train).ok());
    EXPECT_LT(EvaluateModel(m, test).rms, 0.15)
        << QueryTypeName(qt);
  }
}

TEST(PtsHistTest, AllZeroSelectivitiesFallBackToUniform) {
  Workload w;
  w.push_back({Box({0.0, 0.0}, {0.1, 0.1}), 0.0});
  w.push_back({Box({0.9, 0.9}, {1.0, 1.0}), 0.0});
  PtsHist m(2, PtsHistOptions{});
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_EQ(m.NumBuckets(), 8u);
  EXPECT_LT(m.Estimate(Box({0.0, 0.0}, {0.1, 0.1})), 0.3);
}

TEST(PtsHistTest, RejectsInvalidInputs) {
  PtsHist m(2, PtsHistOptions{});
  EXPECT_FALSE(m.Train({}).ok());
  Workload wrong_dim;
  wrong_dim.push_back({Box::Unit(3), 0.5});
  EXPECT_FALSE(m.Train(wrong_dim).ok());
  Workload bad;
  bad.push_back({Box::Unit(2), -0.1});
  EXPECT_FALSE(m.Train(bad).ok());
}

}  // namespace
}  // namespace sel
