// Tests for datasets, the four paper-mimicking generators, and CSV I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "data/csv_io.h"
#include "data/dataset.h"
#include "data/generators.h"

namespace sel {
namespace {

TEST(DatasetTest, BasicAccessors) {
  Dataset d({{"a", false, 0}, {"b", false, 0}},
            {{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}});
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.dim(), 2);
  EXPECT_EQ(d.attribute(0).name, "a");
  EXPECT_DOUBLE_EQ(d.row(1)[1], 0.4);
  EXPECT_DOUBLE_EQ(d.Domain().Volume(), 1.0);
}

TEST(DatasetTest, ProjectSelectsAndReordersAttributes) {
  Dataset d({{"a", false, 0}, {"b", false, 0}, {"c", true, 5}},
            {{0.1, 0.2, 0.25}, {0.3, 0.4, 0.5}});
  const Dataset p = d.Project({2, 0});
  EXPECT_EQ(p.dim(), 2);
  EXPECT_EQ(p.attribute(0).name, "c");
  EXPECT_TRUE(p.attribute(0).categorical);
  EXPECT_DOUBLE_EQ(p.row(0)[0], 0.25);
  EXPECT_DOUBLE_EQ(p.row(0)[1], 0.1);
  EXPECT_EQ(p.num_rows(), 2u);
}

TEST(DatasetTest, MeanComputation) {
  Dataset d({{"a", false, 0}}, {{0.0}, {1.0}});
  EXPECT_DOUBLE_EQ(d.Mean()[0], 0.5);
}

TEST(GeneratorsTest, UniformShapeAndRange) {
  const Dataset d = MakeUniform(500, 4, 1);
  EXPECT_EQ(d.num_rows(), 500u);
  EXPECT_EQ(d.dim(), 4);
  const Point m = d.Mean();
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(m[j], 0.5, 0.06);
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  const Dataset a = MakePowerLike(200, 5);
  const Dataset b = MakePowerLike(200, 5);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.row(i), b.row(i));
  }
  const Dataset c = MakePowerLike(200, 6);
  EXPECT_NE(a.row(0), c.row(0));
}

TEST(GeneratorsTest, PowerLikeShapeMatchesPaper) {
  const Dataset d = MakePowerLike(5000, 11);
  EXPECT_EQ(d.dim(), 7);  // Power has 7 attributes
  // Skew: most mass concentrated at low values of attribute 0 (Fig. 7).
  size_t low = 0;
  for (const auto& r : d.rows()) {
    if (r[0] < 0.3) ++low;
  }
  EXPECT_GT(static_cast<double>(low) / d.num_rows(), 0.55);
}

TEST(GeneratorsTest, PowerLikeAttributesCorrelated) {
  const Dataset d = MakePowerLike(8000, 12);
  // Pearson correlation between attributes 0 and 3 should be clearly
  // positive (readings share a latent load factor).
  const Point m = d.Mean();
  double cov = 0.0, v0 = 0.0, v3 = 0.0;
  for (const auto& r : d.rows()) {
    cov += (r[0] - m[0]) * (r[3] - m[3]);
    v0 += (r[0] - m[0]) * (r[0] - m[0]);
    v3 += (r[3] - m[3]) * (r[3] - m[3]);
  }
  EXPECT_GT(cov / std::sqrt(v0 * v3), 0.5);
}

TEST(GeneratorsTest, ForestLikeShape) {
  const Dataset d = MakeForestLike(2000, 13);
  EXPECT_EQ(d.dim(), 10);  // Forest has 10 numeric attributes
  for (const auto& a : d.attributes()) EXPECT_FALSE(a.categorical);
}

TEST(GeneratorsTest, CensusLikeSchema) {
  const Dataset d = MakeCensusLike(1000, 14);
  EXPECT_EQ(d.dim(), 13);  // Census has 13 attributes
  int categorical = 0;
  for (const auto& a : d.attributes()) {
    if (a.categorical) ++categorical;
  }
  EXPECT_EQ(categorical, 8);  // 8 categorical + 5 numerical
}

TEST(GeneratorsTest, CensusCategoricalValuesOnLattice) {
  const Dataset d = MakeCensusLike(500, 15);
  for (const auto& r : d.rows()) {
    for (int j = 0; j < d.dim(); ++j) {
      if (!d.attribute(j).categorical) continue;
      const int k = d.attribute(j).cardinality;
      const double scaled = r[j] * (k - 1);
      EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
    }
  }
}

TEST(GeneratorsTest, DmvLikeSchema) {
  const Dataset d = MakeDmvLike(1000, 16);
  EXPECT_EQ(d.dim(), 11);  // DMV has 11 attributes
  int categorical = 0;
  for (const auto& a : d.attributes()) {
    if (a.categorical) ++categorical;
  }
  EXPECT_EQ(categorical, 10);  // 10 categorical + 1 numerical
}

TEST(GeneratorsTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[SampleZipf(10, 1.2, &rng)];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], 3 * counts[9]);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(GeneratorsTest, ZipfCardinalityOne) {
  Rng rng(18);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SampleZipf(1, 1.2, &rng), 0);
}

TEST(GeneratorsTest, ByNameLookup) {
  for (const char* name : {"power", "forest", "census", "dmv"}) {
    auto d = MakeDatasetByName(name, 100);
    ASSERT_TRUE(d.ok()) << name;
    EXPECT_EQ(d.value().num_rows(), 100u);
  }
  auto u = MakeDatasetByName("uniform:5", 100);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().dim(), 5);
  EXPECT_FALSE(MakeDatasetByName("nope", 100).ok());
  EXPECT_FALSE(MakeDatasetByName("uniform:x", 100).ok());
}

TEST(GeneratorsTest, MixtureRespectsComponentMeans) {
  std::vector<MixtureComponent> comps(1);
  comps[0].weight = 1.0;
  comps[0].mean = {0.3, 0.7};
  comps[0].stddev = {0.05, 0.05};
  const Dataset d = MakeGaussianMixture(
      comps, {{"x", false, 0}, {"y", false, 0}}, 4000, 19);
  const Point m = d.Mean();
  EXPECT_NEAR(m[0], 0.3, 0.01);
  EXPECT_NEAR(m[1], 0.7, 0.01);
}

TEST(CsvIoTest, RoundTrip) {
  const Dataset d = MakeUniform(50, 3, 20);
  const std::string path =
      (std::filesystem::temp_directory_path() / "sel_ds_test.csv").string();
  ASSERT_TRUE(SaveDatasetCsv(d, path).ok());
  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_rows(), d.num_rows());
  EXPECT_EQ(loaded.value().dim(), d.dim());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    for (int j = 0; j < d.dim(); ++j) {
      EXPECT_NEAR(loaded.value().row(i)[j], d.row(i)[j], 1e-5);
    }
  }
  std::filesystem::remove(path);
}

TEST(CsvIoTest, NormalizesOutOfRangeColumns) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sel_norm_test.csv")
          .string();
  {
    std::ofstream out(path);
    out << "a,b\n10,0.5\n20,0.7\n30,0.1\n";
  }
  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded.value().row(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(loaded.value().row(2)[0], 1.0);
  EXPECT_DOUBLE_EQ(loaded.value().row(0)[1], 0.5);  // already in [0,1]
  std::filesystem::remove(path);
}

TEST(CsvIoTest, RejectsMissingAndMalformed) {
  EXPECT_FALSE(LoadDatasetCsv("/nonexistent/file.csv").ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "sel_bad_test.csv").string();
  {
    std::ofstream out(path);
    out << "a,b\n1,2\n3\n";  // wrong arity
  }
  EXPECT_FALSE(LoadDatasetCsv(path).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sel
