// Property test: the parallel design-matrix builders must equal a
// hand-rolled serial reference row-for-row (same columns, bit-equal
// values) on randomized box / halfspace / ball workloads against
// randomized bucket sets.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sel/sel.h"

namespace sel {
namespace {

Query RandomQuery(QueryType type, int d, Rng* rng) {
  Point c(d), w(d);
  for (int j = 0; j < d; ++j) {
    c[j] = rng->NextDouble();
    w[j] = rng->Uniform(0.05, 0.8);
  }
  switch (type) {
    case QueryType::kBox:
      return Box::FromCenterAndWidths(c, w, Box::Unit(d));
    case QueryType::kHalfspace:
      return Halfspace::ThroughPoint(c, rng->UnitVector(d));
    case QueryType::kBall:
      return Ball(c, rng->Uniform(0.05, 0.5));
    case QueryType::kSemiAlgebraic:
      break;
  }
  return Ball(c, 0.25);
}

Workload RandomWorkload(QueryType type, int d, size_t n, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  w.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    w.push_back({RandomQuery(type, d, &rng), rng.NextDouble()});
  }
  return w;
}

// Serial reference for BuildBoxFractionMatrix (the pre-threading loop).
std::vector<std::vector<std::pair<int, double>>> ReferenceFractionRows(
    const Workload& workload, const std::vector<Box>& buckets,
    const VolumeOptions& vopts, double drop_tolerance) {
  std::vector<std::vector<std::pair<int, double>>> rows(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const Query& q = workload[i].query;
    for (size_t j = 0; j < buckets.size(); ++j) {
      if (q.DisjointFromBox(buckets[j])) continue;
      const double f = QueryBoxFraction(q, buckets[j], vopts);
      if (f > drop_tolerance) {
        rows[i].emplace_back(static_cast<int>(j), f);
      }
    }
  }
  return rows;
}

// Serial reference for BuildPointIndicatorMatrix.
std::vector<std::vector<std::pair<int, double>>> ReferenceIndicatorRows(
    const Workload& workload, const std::vector<Point>& buckets) {
  std::vector<std::vector<std::pair<int, double>>> rows(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const Query& q = workload[i].query;
    for (size_t j = 0; j < buckets.size(); ++j) {
      if (q.Contains(buckets[j])) {
        rows[i].emplace_back(static_cast<int>(j), 1.0);
      }
    }
  }
  return rows;
}

void ExpectMatrixEqualsRows(
    const SparseMatrix& m,
    const std::vector<std::vector<std::pair<int, double>>>& rows) {
  ASSERT_EQ(static_cast<size_t>(m.rows()), rows.size());
  for (int i = 0; i < m.rows(); ++i) {
    ASSERT_EQ(m.RowSize(i), rows[i].size()) << "row " << i;
    const int32_t* cols = m.RowCols(i);
    const double* vals = m.RowVals(i);
    size_t k = 0;
    for (const auto& [col, value] : rows[i]) {
      EXPECT_EQ(cols[k], col) << "row " << i;
      EXPECT_EQ(vals[k], value) << "row " << i << " col " << col;
      ++k;
    }
  }
}

class ParallelMatrixTest : public ::testing::TestWithParam<QueryType> {};

TEST_P(ParallelMatrixTest, BoxFractionMatrixMatchesSerialReference) {
  const VolumeOptions vopts;
  for (uint64_t trial = 0; trial < 4; ++trial) {
    const int d = 2 + static_cast<int>(trial % 3);  // 2..4 dims
    Rng rng(900 + trial);
    const Workload workload = RandomWorkload(GetParam(), d, 40, 17 + trial);
    std::vector<Box> buckets;
    for (int j = 0; j < 150; ++j) {
      Point c(d), w(d);
      for (int k = 0; k < d; ++k) {
        c[k] = rng.NextDouble();
        w[k] = rng.Uniform(0.02, 0.4);
      }
      buckets.push_back(Box::FromCenterAndWidths(c, w, Box::Unit(d)));
    }
    const double drop = trial % 2 == 0 ? 0.0 : 1e-6;

    // Reference under a 1-thread pool: the exact legacy serial path.
    ThreadPool serial(1);
    std::vector<std::vector<std::pair<int, double>>> expected;
    {
      ScopedPoolOverride scope(&serial);
      expected = ReferenceFractionRows(workload, buckets, vopts, drop);
    }
    for (int threads : {2, 4, 8}) {
      ThreadPool pool(threads);
      ScopedPoolOverride scope(&pool);
      const SparseMatrix m =
          BuildBoxFractionMatrix(workload, buckets, vopts, drop);
      ExpectMatrixEqualsRows(m, expected);
    }
  }
}

TEST_P(ParallelMatrixTest, PointIndicatorMatrixMatchesSerialReference) {
  for (uint64_t trial = 0; trial < 4; ++trial) {
    const int d = 2 + static_cast<int>(trial % 4);  // 2..5 dims
    Rng rng(4200 + trial);
    const Workload workload = RandomWorkload(GetParam(), d, 60, 91 + trial);
    std::vector<Point> buckets;
    for (int j = 0; j < 500; ++j) {
      buckets.push_back(SampleBox(Box::Unit(d), &rng));
    }
    const auto expected = ReferenceIndicatorRows(workload, buckets);
    for (int threads : {2, 4, 8}) {
      ThreadPool pool(threads);
      ScopedPoolOverride scope(&pool);
      const SparseMatrix m = BuildPointIndicatorMatrix(workload, buckets);
      ExpectMatrixEqualsRows(m, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueryTypes, ParallelMatrixTest,
    ::testing::Values(QueryType::kBox, QueryType::kHalfspace,
                      QueryType::kBall),
    [](const ::testing::TestParamInfo<QueryType>& info) {
      return std::string(QueryTypeName(info.param));
    });

// The parallel QMC volume slicing must reproduce the global Halton
// stream exactly: box∩ball volumes in d >= 3 are QMC-estimated, so they
// are the sensitive probe.
TEST(ParallelQmcTest, BallVolumesIdenticalAcrossThreadCounts) {
  const int d = 4;
  Rng rng(5);
  std::vector<std::pair<Box, Ball>> cases;
  for (int i = 0; i < 16; ++i) {
    Point c(d), w(d), bc(d);
    for (int k = 0; k < d; ++k) {
      c[k] = rng.NextDouble();
      w[k] = rng.Uniform(0.2, 0.9);
      bc[k] = rng.NextDouble();
    }
    cases.emplace_back(Box::FromCenterAndWidths(c, w, Box::Unit(d)),
                       Ball(bc, rng.Uniform(0.2, 0.6)));
  }
  ThreadPool serial(1);
  std::vector<double> expected;
  {
    ScopedPoolOverride scope(&serial);
    for (const auto& [box, ball] : cases) {
      expected.push_back(BoxBallIntersectionVolume(box, ball));
    }
  }
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(&pool);
    for (size_t i = 0; i < cases.size(); ++i) {
      EXPECT_EQ(BoxBallIntersectionVolume(cases[i].first, cases[i].second),
                expected[i])
          << "case " << i;
    }
  }
}

}  // namespace
}  // namespace sel
