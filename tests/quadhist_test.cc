// Tests for QuadHist (§3.2 / Appendix A.1): Algorithm 1–2 refinement,
// order invariance (Lemma A.1), leaf caps, weight fitting, and estimation
// across all three query classes.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/quadhist.h"
#include "data/generators.h"
#include "index/kdtree.h"
#include "eval_metrics/metrics.h"
#include "workload/workload.h"

namespace sel {
namespace {

Workload MakeBoxWorkload(const Dataset& data, const CountingKdTree& index,
                         size_t n, uint64_t seed,
                         QueryType type = QueryType::kBox) {
  WorkloadOptions opts;
  opts.query_type = type;
  opts.seed = seed;
  WorkloadGenerator gen(&data, &index, opts);
  return gen.Generate(n);
}

struct Fixture2D {
  Fixture2D()
      : data(MakePowerLike(4000, 60).Project({0, 1})), index(data.rows()) {}
  Dataset data;
  CountingKdTree index;
};

TEST(QuadHistTest, SingleLeafBeforeAnySplit) {
  QuadHistOptions opts;
  opts.tau = 0.9;  // never split: every density estimate is <= 1 * s
  QuadHist model(2, opts);
  Workload w;
  w.push_back({Box({0.2, 0.2}, {0.4, 0.4}), 0.5});
  ASSERT_TRUE(model.Train(w).ok());
  EXPECT_EQ(model.NumBuckets(), 1u);
}

TEST(QuadHistTest, SplitsWhereDensityExceedsTau) {
  QuadHistOptions opts;
  opts.tau = 0.1;
  QuadHist model(2, opts);
  Workload w;
  // A concentrated query with high selectivity forces splits around it.
  w.push_back({Box({0.0, 0.0}, {0.25, 0.25}), 0.8});
  ASSERT_TRUE(model.Train(w).ok());
  EXPECT_GT(model.NumBuckets(), 1u);
  // Leaves near the query corner should be smaller than far leaves.
  const auto leaves = model.LeafBoxes();
  double near_min = 1.0, far_min = 1.0;
  for (const auto& b : leaves) {
    const double vol = b.Volume();
    if (b.hi(0) <= 0.5 && b.hi(1) <= 0.5) {
      near_min = std::min(near_min, vol);
    }
    if (b.lo(0) >= 0.5 && b.lo(1) >= 0.5) {
      far_min = std::min(far_min, vol);
    }
  }
  EXPECT_LT(near_min, far_min);
}

TEST(QuadHistTest, OrderInvariantPartition) {
  // Lemma A.1: the partition is independent of the processing order.
  Fixture2D f;
  Workload w = MakeBoxWorkload(f.data, f.index, 60, 61);
  QuadHistOptions opts;
  opts.tau = 0.02;
  QuadHist a(2, opts);
  ASSERT_TRUE(a.Train(w).ok());

  Workload reversed(w.rbegin(), w.rend());
  QuadHist b(2, opts);
  ASSERT_TRUE(b.Train(reversed).ok());

  auto leaves_a = a.LeafBoxes();
  auto leaves_b = b.LeafBoxes();
  ASSERT_EQ(leaves_a.size(), leaves_b.size());
  auto key = [](const Box& box) {
    return std::make_pair(box.lo(), box.hi());
  };
  std::vector<std::pair<Point, Point>> ka, kb;
  for (const auto& box : leaves_a) ka.push_back(key(box));
  for (const auto& box : leaves_b) kb.push_back(key(box));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  EXPECT_EQ(ka, kb);
}

TEST(QuadHistTest, SameWorkloadSameModel) {
  // Stability (§3.2): identical training input -> identical predictions.
  Fixture2D f;
  Workload w = MakeBoxWorkload(f.data, f.index, 50, 62);
  Workload test = MakeBoxWorkload(f.data, f.index, 20, 63);
  QuadHistOptions opts;
  QuadHist a(2, opts), b(2, opts);
  ASSERT_TRUE(a.Train(w).ok());
  ASSERT_TRUE(b.Train(w).ok());
  for (const auto& z : test) {
    EXPECT_EQ(a.Estimate(z.query), b.Estimate(z.query));
  }
}

TEST(QuadHistTest, SmallerTauMeansMoreBuckets) {
  Fixture2D f;
  Workload w = MakeBoxWorkload(f.data, f.index, 40, 64);
  size_t prev = 0;
  for (double tau : {0.2, 0.05, 0.01}) {
    QuadHistOptions opts;
    opts.tau = tau;
    QuadHist m(2, opts);
    ASSERT_TRUE(m.Train(w).ok());
    EXPECT_GE(m.NumBuckets(), prev);
    prev = m.NumBuckets();
  }
}

TEST(QuadHistTest, MaxLeavesCapRespected) {
  Fixture2D f;
  Workload w = MakeBoxWorkload(f.data, f.index, 80, 65);
  QuadHistOptions opts;
  opts.tau = 0.001;
  opts.max_leaves = 50;
  QuadHist m(2, opts);
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_LE(m.NumBuckets(), 50u);
}

TEST(QuadHistTest, MaxDepthCapRespected) {
  QuadHistOptions opts;
  opts.tau = 1e-6;
  opts.max_depth = 3;
  QuadHist m(2, opts);
  Workload w;
  w.push_back({Box({0.0, 0.0}, {0.1, 0.1}), 0.9});
  ASSERT_TRUE(m.Train(w).ok());
  for (const auto& b : m.LeafBoxes()) {
    EXPECT_GE(b.width(0), 1.0 / 8 - 1e-12);  // depth <= 3 halvings
  }
}

TEST(QuadHistTest, WeightsOnSimplex) {
  Fixture2D f;
  Workload w = MakeBoxWorkload(f.data, f.index, 50, 66);
  QuadHistOptions opts;
  QuadHist m(2, opts);
  ASSERT_TRUE(m.Train(w).ok());
  const auto weights = m.LeafWeights();
  double sum = 0.0;
  for (double x : weights) {
    EXPECT_GE(x, -1e-12);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(QuadHistTest, EstimatesInUnitInterval) {
  Fixture2D f;
  Workload w = MakeBoxWorkload(f.data, f.index, 60, 67);
  QuadHist m(2, QuadHistOptions{});
  ASSERT_TRUE(m.Train(w).ok());
  for (const auto& z : MakeBoxWorkload(f.data, f.index, 60, 68)) {
    const double e = m.Estimate(z.query);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST(QuadHistTest, FullDomainQueryEstimatesNearOne) {
  Fixture2D f;
  Workload w = MakeBoxWorkload(f.data, f.index, 50, 69);
  QuadHist m(2, QuadHistOptions{});
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_NEAR(m.Estimate(Box::Unit(2)), 1.0, 1e-9);
}

TEST(QuadHistTest, LearnsPointMassLocation) {
  // Data concentrated in one corner: trained on informative queries, the
  // model should put mass there.
  Workload w;
  w.push_back({Box({0.0, 0.0}, {0.5, 0.5}), 1.0});
  w.push_back({Box({0.5, 0.5}, {1.0, 1.0}), 0.0});
  w.push_back({Box({0.0, 0.0}, {0.25, 0.25}), 1.0});
  w.push_back({Box({0.25, 0.25}, {1.0, 1.0}), 0.0});
  QuadHistOptions opts;
  opts.tau = 0.05;
  QuadHist m(2, opts);
  ASSERT_TRUE(m.Train(w).ok());
  EXPECT_GT(m.Estimate(Box({0.0, 0.0}, {0.3, 0.3})), 0.8);
  EXPECT_LT(m.Estimate(Box({0.6, 0.6}, {1.0, 1.0})), 0.2);
}

TEST(QuadHistTest, AccuracyImprovesWithTrainingSize) {
  Fixture2D f;
  const Workload test = MakeBoxWorkload(f.data, f.index, 150, 70);
  double rms_small = 0.0, rms_large = 0.0;
  {
    QuadHistOptions opts;
    opts.tau = 0.005;
    QuadHist m(2, opts);
    ASSERT_TRUE(m.Train(MakeBoxWorkload(f.data, f.index, 20, 71)).ok());
    rms_small = EvaluateModel(m, test).rms;
  }
  {
    QuadHistOptions opts;
    opts.tau = 0.005;
    QuadHist m(2, opts);
    ASSERT_TRUE(m.Train(MakeBoxWorkload(f.data, f.index, 300, 72)).ok());
    rms_large = EvaluateModel(m, test).rms;
  }
  EXPECT_LT(rms_large, rms_small);
  EXPECT_LT(rms_large, 0.05);  // §4.1: acceptable accuracy by a few hundred
}

TEST(QuadHistTest, HandlesBallQueries) {
  Fixture2D f;
  Workload w = MakeBoxWorkload(f.data, f.index, 80, 73, QueryType::kBall);
  QuadHistOptions opts;
  opts.tau = 0.01;
  QuadHist m(2, opts);
  ASSERT_TRUE(m.Train(w).ok());
  const Workload test =
      MakeBoxWorkload(f.data, f.index, 60, 74, QueryType::kBall);
  const ErrorReport r = EvaluateModel(m, test);
  EXPECT_LT(r.rms, 0.12);
}

TEST(QuadHistTest, HandlesHalfspaceQueries) {
  Fixture2D f;
  Workload w =
      MakeBoxWorkload(f.data, f.index, 80, 75, QueryType::kHalfspace);
  QuadHistOptions opts;
  opts.tau = 0.01;
  QuadHist m(2, opts);
  ASSERT_TRUE(m.Train(w).ok());
  const Workload test =
      MakeBoxWorkload(f.data, f.index, 60, 76, QueryType::kHalfspace);
  const ErrorReport r = EvaluateModel(m, test);
  EXPECT_LT(r.rms, 0.12);
}

TEST(QuadHistTest, LinfObjectiveTrains) {
  Fixture2D f;
  Workload w = MakeBoxWorkload(f.data, f.index, 30, 77);
  QuadHistOptions opts;
  opts.objective = TrainObjective::kLinf;
  opts.tau = 0.05;
  QuadHist m(2, opts);
  ASSERT_TRUE(m.Train(w).ok());
  // The L∞-fit training error should be small on a consistent workload.
  double worst = 0.0;
  for (const auto& z : w) {
    worst = std::max(worst, std::abs(m.Estimate(z.query) - z.selectivity));
  }
  EXPECT_LT(worst, 0.2);
}

TEST(QuadHistTest, RefineVisitCountBounded) {
  // Lemma A.2: node visits per query are O((s/tau) log(s/(tau vol R))).
  QuadHistOptions opts;
  opts.tau = 0.01;
  QuadHist m(2, opts);
  Workload w;
  w.push_back({Box({0.4, 0.4}, {0.6, 0.6}), 0.5});
  ASSERT_TRUE(m.Train(w).ok());
  const double s_over_tau = 0.5 / 0.01;
  // Generous constant; the point is visits do not track total tree size.
  EXPECT_LT(m.total_refine_visits(),
            static_cast<size_t>(64.0 * s_over_tau * 16.0));
}

TEST(QuadHistTest, RejectsInvalidInputs) {
  QuadHist m(2, QuadHistOptions{});
  EXPECT_FALSE(m.Train({}).ok());
  Workload wrong_dim;
  wrong_dim.push_back({Box::Unit(3), 0.5});
  EXPECT_FALSE(m.Train(wrong_dim).ok());
  Workload bad_label;
  bad_label.push_back({Box::Unit(2), 1.5});
  EXPECT_FALSE(m.Train(bad_label).ok());
  Workload good;
  good.push_back({Box::Unit(2), 1.0});
  ASSERT_TRUE(m.Train(good).ok());
  EXPECT_FALSE(m.Train(good).ok());  // double-train rejected
}

TEST(QuadHistTest, WorksInOneAndThreeDimensions) {
  for (int d : {1, 3}) {
    const Dataset data = MakeUniform(2000, d, 80 + d);
    CountingKdTree index(data.rows());
    Workload w = MakeBoxWorkload(data, index, 60, 81 + d);
    QuadHistOptions opts;
    opts.tau = 0.02;
    QuadHist m(d, opts);
    ASSERT_TRUE(m.Train(w).ok()) << "d=" << d;
    const Workload test = MakeBoxWorkload(data, index, 40, 90 + d);
    EXPECT_LT(EvaluateModel(m, test).rms, 0.12) << "d=" << d;
  }
}

}  // namespace
}  // namespace sel
