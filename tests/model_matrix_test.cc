// Parameterized cross-product sweep: every learner × query type ×
// dataset combination that the design supports must train, produce
// bounded and monotone-consistent estimates, and beat the trivial
// mean predictor — the library-level contract behind Theorem 2.1.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "sel/sel.h"

namespace sel {
namespace {

struct Combo {
  const char* model;  // EstimatorRegistry name
  QueryType query_type;
  const char* dataset;
  std::vector<int> attrs;
};

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  const auto* entry = EstimatorRegistry::Global().Find(info.param.model);
  return entry->display_name + "_" +
         QueryTypeName(info.param.query_type) + "_" + info.param.dataset +
         "_" + std::to_string(info.param.attrs.size()) + "d";
}

class ModelMatrixTest : public ::testing::TestWithParam<Combo> {};

TEST_P(ModelMatrixTest, TrainsAndGeneralizes) {
  const Combo& c = GetParam();
  auto ds = MakeDatasetByName(c.dataset, 4000, 1500);
  ASSERT_TRUE(ds.ok());
  const Dataset data = ds.value().Project(c.attrs);
  const CountingKdTree index(data.rows());
  WorkloadOptions opts;
  opts.query_type = c.query_type;
  opts.seed = 1501;
  WorkloadGenerator gen(&data, &index, opts);
  const Workload train = gen.Generate(150);
  const Workload test = gen.Generate(80);

  auto built = EstimatorRegistry::Build(c.model, data.dim(), train.size());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& model = built.value();
  ASSERT_TRUE(model->Train(train).ok());

  // Bounded estimates; trivial baseline beaten.
  double mean = 0.0;
  for (const auto& z : train) mean += z.selectivity;
  mean /= static_cast<double>(train.size());
  double model_sq = 0.0, mean_sq = 0.0;
  for (const auto& z : test) {
    const double e = model->Estimate(z.query);
    ASSERT_GE(e, 0.0);
    ASSERT_LE(e, 1.0);
    model_sq += (e - z.selectivity) * (e - z.selectivity);
    mean_sq += (mean - z.selectivity) * (mean - z.selectivity);
  }
  EXPECT_LT(model_sq, mean_sq);
  EXPECT_LT(std::sqrt(model_sq / test.size()), 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    AllSupportedCombos, ModelMatrixTest,
    ::testing::Values(
        // QuadHist: every query type, low dimensions.
        Combo{"quadhist", QueryType::kBox, "power", {0, 1}},
        Combo{"quadhist", QueryType::kBall, "power", {0, 1}},
        Combo{"quadhist", QueryType::kHalfspace, "power", {0, 1}},
        Combo{"quadhist", QueryType::kBox, "forest", {0, 1, 2}},
        Combo{"quadhist", QueryType::kBox, "census", {0, 8}},
        // PtsHist: every query type, low and high dimensions.
        Combo{"ptshist", QueryType::kBox, "power", {0, 1}},
        Combo{"ptshist", QueryType::kBall, "forest",
              {0, 1, 2, 3}},
        Combo{"ptshist", QueryType::kHalfspace, "forest",
              {0, 1, 2, 3}},
        Combo{"ptshist", QueryType::kBox, "forest",
              {0, 1, 2, 3, 4, 5}},
        Combo{"ptshist", QueryType::kBox, "dmv", {2, 10}},
        // QuickSel and ISOMER: boxes only (their supported class).
        Combo{"quicksel", QueryType::kBox, "power", {0, 1}},
        Combo{"quicksel", QueryType::kBox, "forest", {0, 1, 2}},
        Combo{"quicksel", QueryType::kBox, "census", {0, 8}},
        Combo{"isomer", QueryType::kBox, "power", {0, 1}},
        Combo{"isomer", QueryType::kBox, "forest", {0, 1}}),
    ComboName);

// The GMM learner joins the sweep through the registry too; cover its
// query-type × dimension combos directly.
class GmmMatrixTest
    : public ::testing::TestWithParam<std::tuple<QueryType, int>> {};

TEST_P(GmmMatrixTest, TrainsAndGeneralizes) {
  const auto [qt, d] = GetParam();
  std::vector<int> attrs(d);
  for (int j = 0; j < d; ++j) attrs[j] = j;
  const Dataset data = MakeForestLike(4000, 1502).Project(attrs);
  const CountingKdTree index(data.rows());
  WorkloadOptions opts;
  opts.query_type = qt;
  opts.seed = 1503;
  WorkloadGenerator gen(&data, &index, opts);
  const Workload train = gen.Generate(150);
  const Workload test = gen.Generate(80);
  auto built = EstimatorRegistry::Build("gmm:budget=none", d, train.size());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE(built.value()->Train(train).ok());
  const ErrorReport r = EvaluateModel(*built.value(), test);
  EXPECT_LT(r.rms, 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    QueryTypesAndDims, GmmMatrixTest,
    ::testing::Combine(::testing::Values(QueryType::kBox, QueryType::kBall,
                                         QueryType::kHalfspace),
                       ::testing::Values(2, 4)));

}  // namespace
}  // namespace sel
