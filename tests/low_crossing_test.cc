// Tests for the Lemma 2.4 machinery: crossing numbers of range orderings
// and the greedy low-crossing construction.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "learning/low_crossing.h"

namespace sel {
namespace {

std::vector<Point> UniformProbes(size_t n, int d, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (size_t i = 0; i < n; ++i) {
    Point p(d);
    for (auto& x : p) x = rng.NextDouble();
    pts.push_back(std::move(p));
  }
  return pts;
}

TEST(LowCrossingTest, CrossingsOfPointCountsSymmetricDifferences) {
  std::vector<Query> ranges = {
      Box({0.0, 0.0}, {0.5, 1.0}),   // left half
      Box({0.25, 0.0}, {0.75, 1.0}), // middle
      Box({0.5, 0.0}, {1.0, 1.0}),   // right half
  };
  const auto order = IdentityOrder(3);
  // x in left only: membership pattern (1,0,0) -> 1 crossing.
  EXPECT_EQ(CrossingsOfPoint({0.1, 0.5}, ranges, order), 1);
  // x in all three overlap region (0.5): (1,1,1) -> 0 crossings.
  EXPECT_EQ(CrossingsOfPoint({0.5, 0.5}, ranges, order), 0);
  // x = 0.3 is in left and middle: pattern along (left, right, middle)
  // is (1,0,1) -> 2 crossings; along identity (1,1,0) -> 1 crossing.
  EXPECT_EQ(CrossingsOfPoint({0.3, 0.5}, ranges, {0, 2, 1}), 2);
  EXPECT_EQ(CrossingsOfPoint({0.3, 0.5}, ranges, order), 1);
  // x = 0.9 is in right only: (0,0,1) -> 1 crossing.
  EXPECT_EQ(CrossingsOfPoint({0.9, 0.5}, ranges, order), 1);
}

TEST(LowCrossingTest, MaxAndMeanCrossingsConsistent) {
  std::vector<Query> ranges;
  Rng rng(801);
  for (int i = 0; i < 10; ++i) {
    Point c = {rng.NextDouble(), rng.NextDouble()};
    ranges.push_back(Box::FromCenterAndWidths(
        c, {rng.NextDouble(), rng.NextDouble()}, Box::Unit(2)));
  }
  const auto probes = UniformProbes(200, 2, 802);
  const auto order = IdentityOrder(ranges.size());
  const int max_c = MaxCrossings(probes, ranges, order);
  const double mean_c = MeanCrossings(probes, ranges, order);
  EXPECT_LE(mean_c, max_c);
  EXPECT_GE(mean_c, 0.0);
  EXPECT_LE(max_c, static_cast<int>(ranges.size()) - 1);
}

TEST(LowCrossingTest, GreedyOrderIsPermutation) {
  std::vector<Query> ranges;
  Rng rng(803);
  for (int i = 0; i < 15; ++i) {
    Point c = {rng.NextDouble(), rng.NextDouble()};
    ranges.push_back(Box::FromCenterAndWidths(
        c, {0.3, 0.3}, Box::Unit(2)));
  }
  const auto sample = UniformProbes(300, 2, 804);
  const auto order = GreedyLowCrossingOrder(ranges, sample);
  ASSERT_EQ(order.size(), ranges.size());
  std::vector<bool> seen(ranges.size(), false);
  for (int idx : order) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, static_cast<int>(ranges.size()));
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(LowCrossingTest, GreedyBeatsWorstCaseOrderingOnIntervals) {
  // 1-D nested/sliding intervals: a "shuffled" order makes points cross
  // many pairs; the greedy symmetric-difference chain restores locality.
  const int k = 24;
  std::vector<Query> ranges;
  for (int i = 0; i < k; ++i) {
    const double lo = static_cast<double>(i) / (2 * k);
    ranges.push_back(Box({lo}, {lo + 0.5}));
  }
  // Adversarial order: alternate far-apart intervals.
  std::vector<int> bad;
  for (int i = 0; i < k / 2; ++i) {
    bad.push_back(i);
    bad.push_back(k / 2 + i);
  }
  const auto probes = UniformProbes(500, 1, 805);
  const auto sample = UniformProbes(400, 1, 806);
  const auto greedy = GreedyLowCrossingOrder(ranges, sample);
  EXPECT_LT(MaxCrossings(probes, ranges, greedy),
            MaxCrossings(probes, ranges, bad));
}

TEST(LowCrossingTest, GreedySublinearOnBoxes) {
  // Lemma 2.4 for boxes in the plane (lambda = 4): crossings should grow
  // clearly sublinearly in k. Compare k=16 vs k=64: a linear quantity
  // would scale 4x; we check the greedy max stays well under that.
  Rng rng(807);
  auto make_ranges = [&rng](int k) {
    std::vector<Query> ranges;
    for (int i = 0; i < k; ++i) {
      Point c = {rng.NextDouble(), rng.NextDouble()};
      ranges.push_back(Box::FromCenterAndWidths(
          c, {0.4, 0.4}, Box::Unit(2)));
    }
    return ranges;
  };
  const auto probes = UniformProbes(400, 2, 808);
  const auto sample = UniformProbes(400, 2, 809);
  const auto r16 = make_ranges(16);
  const auto r64 = make_ranges(64);
  const int c16 = MaxCrossings(probes, r16,
                               GreedyLowCrossingOrder(r16, sample));
  const int c64 = MaxCrossings(probes, r64,
                               GreedyLowCrossingOrder(r64, sample));
  EXPECT_LT(c64, 3 * std::max(c16, 2));  // sublinear growth (4x ranges)
}

TEST(LowCrossingTest, EmptyAndSingleton) {
  EXPECT_TRUE(GreedyLowCrossingOrder({}, {}).empty());
  std::vector<Query> one = {Box::Unit(2)};
  const auto order = GreedyLowCrossingOrder(one, UniformProbes(10, 2, 810));
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 0);
}

TEST(LowCrossingTest, Lemma23LowerBoundHoldsOnShatteredInstance) {
  // Lemma 2.3's logic: if a distribution realizes the alternating subset
  // E = {even-indexed ranges} with gap gamma, the expected crossings
  // under that distribution exceed gamma*(k-1). Construct it explicitly:
  // point masses alternating inside/outside consecutive ranges.
  const int k = 6;
  std::vector<Query> ranges;
  for (int i = 0; i < k; ++i) {
    const double lo = static_cast<double>(i) / k;
    ranges.push_back(Box({lo}, {lo + 0.5 / k}));  // disjoint intervals
  }
  // A "distribution" of one probe point inside every even range: it
  // crosses both neighbors of each even range it occupies.
  std::vector<Point> probes;
  for (int i = 0; i < k; i += 2) {
    probes.push_back({(i + 0.25) / k});
  }
  const double mean =
      MeanCrossings(probes, ranges, IdentityOrder(ranges.size()));
  // Each probe is inside exactly one range in the middle of the order:
  // 2 crossings (1 for the first range). gamma = 1 here in the 0/1 case:
  // E[I_x] must be >= ~2 > gamma * ... — sanity-check the mechanics.
  EXPECT_GE(mean, 1.0);
}

}  // namespace
}  // namespace sel
