file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_29_objectives.dir/bench_fig24_29_objectives.cc.o"
  "CMakeFiles/bench_fig24_29_objectives.dir/bench_fig24_29_objectives.cc.o.d"
  "bench_fig24_29_objectives"
  "bench_fig24_29_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_29_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
