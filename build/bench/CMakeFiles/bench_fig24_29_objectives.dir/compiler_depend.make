# Empty compiler generated dependencies file for bench_fig24_29_objectives.
# This may be replaced when dependencies are built.
