file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_21_halfspace.dir/bench_fig20_21_halfspace.cc.o"
  "CMakeFiles/bench_fig20_21_halfspace.dir/bench_fig20_21_halfspace.cc.o.d"
  "bench_fig20_21_halfspace"
  "bench_fig20_21_halfspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_21_halfspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
