file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_qerror_dmv.dir/bench_table4_qerror_dmv.cc.o"
  "CMakeFiles/bench_table4_qerror_dmv.dir/bench_table4_qerror_dmv.cc.o.d"
  "bench_table4_qerror_dmv"
  "bench_table4_qerror_dmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_qerror_dmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
