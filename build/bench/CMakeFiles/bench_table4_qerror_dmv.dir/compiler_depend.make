# Empty compiler generated dependencies file for bench_table4_qerror_dmv.
# This may be replaced when dependencies are built.
