# Empty compiler generated dependencies file for bench_motivation_avi.
# This may be replaced when dependencies are built.
