file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_avi.dir/bench_motivation_avi.cc.o"
  "CMakeFiles/bench_motivation_avi.dir/bench_motivation_avi.cc.o.d"
  "bench_motivation_avi"
  "bench_motivation_avi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_avi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
