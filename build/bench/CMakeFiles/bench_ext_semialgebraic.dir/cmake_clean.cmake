file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_semialgebraic.dir/bench_ext_semialgebraic.cc.o"
  "CMakeFiles/bench_ext_semialgebraic.dir/bench_ext_semialgebraic.cc.o.d"
  "bench_ext_semialgebraic"
  "bench_ext_semialgebraic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_semialgebraic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
