# Empty compiler generated dependencies file for bench_ext_semialgebraic.
# This may be replaced when dependencies are built.
