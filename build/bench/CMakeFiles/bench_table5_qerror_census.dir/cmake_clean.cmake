file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_qerror_census.dir/bench_table5_qerror_census.cc.o"
  "CMakeFiles/bench_table5_qerror_census.dir/bench_table5_qerror_census.cc.o.d"
  "bench_table5_qerror_census"
  "bench_table5_qerror_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_qerror_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
