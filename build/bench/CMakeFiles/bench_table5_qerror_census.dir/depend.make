# Empty dependencies file for bench_table5_qerror_census.
# This may be replaced when dependencies are built.
