file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_volume_qmc.dir/bench_ablation_volume_qmc.cc.o"
  "CMakeFiles/bench_ablation_volume_qmc.dir/bench_ablation_volume_qmc.cc.o.d"
  "bench_ablation_volume_qmc"
  "bench_ablation_volume_qmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_volume_qmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
