# Empty dependencies file for bench_appendix_forest.
# This may be replaced when dependencies are built.
