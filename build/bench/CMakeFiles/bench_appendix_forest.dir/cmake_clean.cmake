file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_forest.dir/bench_appendix_forest.cc.o"
  "CMakeFiles/bench_appendix_forest.dir/bench_appendix_forest.cc.o.d"
  "bench_appendix_forest"
  "bench_appendix_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
