# Empty dependencies file for bench_ablation_ptshist.
# This may be replaced when dependencies are built.
