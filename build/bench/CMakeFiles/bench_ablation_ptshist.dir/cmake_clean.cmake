file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ptshist.dir/bench_ablation_ptshist.cc.o"
  "CMakeFiles/bench_ablation_ptshist.dir/bench_ablation_ptshist.cc.o.d"
  "bench_ablation_ptshist"
  "bench_ablation_ptshist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ptshist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
