# Empty compiler generated dependencies file for bench_prediction_time.
# This may be replaced when dependencies are built.
