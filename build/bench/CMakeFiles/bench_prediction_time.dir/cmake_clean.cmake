file(REMOVE_RECURSE
  "CMakeFiles/bench_prediction_time.dir/bench_prediction_time.cc.o"
  "CMakeFiles/bench_prediction_time.dir/bench_prediction_time.cc.o.d"
  "bench_prediction_time"
  "bench_prediction_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prediction_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
