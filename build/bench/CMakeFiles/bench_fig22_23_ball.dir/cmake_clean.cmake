file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_23_ball.dir/bench_fig22_23_ball.cc.o"
  "CMakeFiles/bench_fig22_23_ball.dir/bench_fig22_23_ball.cc.o.d"
  "bench_fig22_23_ball"
  "bench_fig22_23_ball.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_23_ball.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
