file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_qerror_forest.dir/bench_table3_qerror_forest.cc.o"
  "CMakeFiles/bench_table3_qerror_forest.dir/bench_table3_qerror_forest.cc.o.d"
  "bench_table3_qerror_forest"
  "bench_table3_qerror_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_qerror_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
