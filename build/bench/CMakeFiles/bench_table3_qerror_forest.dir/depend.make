# Empty dependencies file for bench_table3_qerror_forest.
# This may be replaced when dependencies are built.
