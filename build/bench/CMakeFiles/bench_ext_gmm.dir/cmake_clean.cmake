file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gmm.dir/bench_ext_gmm.cc.o"
  "CMakeFiles/bench_ext_gmm.dir/bench_ext_gmm.cc.o.d"
  "bench_ext_gmm"
  "bench_ext_gmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
