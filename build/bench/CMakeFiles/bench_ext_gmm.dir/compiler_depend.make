# Empty compiler generated dependencies file for bench_ext_gmm.
# This may be replaced when dependencies are built.
