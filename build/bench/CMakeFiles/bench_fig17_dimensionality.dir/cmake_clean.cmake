file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_dimensionality.dir/bench_fig17_dimensionality.cc.o"
  "CMakeFiles/bench_fig17_dimensionality.dir/bench_fig17_dimensionality.cc.o.d"
  "bench_fig17_dimensionality"
  "bench_fig17_dimensionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
