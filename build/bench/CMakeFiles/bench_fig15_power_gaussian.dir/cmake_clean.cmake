file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_power_gaussian.dir/bench_fig15_power_gaussian.cc.o"
  "CMakeFiles/bench_fig15_power_gaussian.dir/bench_fig15_power_gaussian.cc.o.d"
  "bench_fig15_power_gaussian"
  "bench_fig15_power_gaussian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_power_gaussian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
