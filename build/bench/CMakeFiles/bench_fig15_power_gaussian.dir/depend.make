# Empty dependencies file for bench_fig15_power_gaussian.
# This may be replaced when dependencies are built.
