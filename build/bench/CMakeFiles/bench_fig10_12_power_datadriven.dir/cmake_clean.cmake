file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_12_power_datadriven.dir/bench_fig10_12_power_datadriven.cc.o"
  "CMakeFiles/bench_fig10_12_power_datadriven.dir/bench_fig10_12_power_datadriven.cc.o.d"
  "bench_fig10_12_power_datadriven"
  "bench_fig10_12_power_datadriven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_12_power_datadriven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
