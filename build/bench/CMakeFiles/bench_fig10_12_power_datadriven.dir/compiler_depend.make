# Empty compiler generated dependencies file for bench_fig10_12_power_datadriven.
# This may be replaced when dependencies are built.
