file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_19_dim_compare.dir/bench_fig18_19_dim_compare.cc.o"
  "CMakeFiles/bench_fig18_19_dim_compare.dir/bench_fig18_19_dim_compare.cc.o.d"
  "bench_fig18_19_dim_compare"
  "bench_fig18_19_dim_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_19_dim_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
