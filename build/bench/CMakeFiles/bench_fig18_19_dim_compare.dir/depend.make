# Empty dependencies file for bench_fig18_19_dim_compare.
# This may be replaced when dependencies are built.
