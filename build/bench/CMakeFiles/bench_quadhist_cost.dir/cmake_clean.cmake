file(REMOVE_RECURSE
  "CMakeFiles/bench_quadhist_cost.dir/bench_quadhist_cost.cc.o"
  "CMakeFiles/bench_quadhist_cost.dir/bench_quadhist_cost.cc.o.d"
  "bench_quadhist_cost"
  "bench_quadhist_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quadhist_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
