# Empty dependencies file for bench_quadhist_cost.
# This may be replaced when dependencies are built.
