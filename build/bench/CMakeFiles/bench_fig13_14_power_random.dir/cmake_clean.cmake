file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_14_power_random.dir/bench_fig13_14_power_random.cc.o"
  "CMakeFiles/bench_fig13_14_power_random.dir/bench_fig13_14_power_random.cc.o.d"
  "bench_fig13_14_power_random"
  "bench_fig13_14_power_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_14_power_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
