# Empty compiler generated dependencies file for bench_fig13_14_power_random.
# This may be replaced when dependencies are built.
