file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_train_test_shift.dir/bench_fig16_train_test_shift.cc.o"
  "CMakeFiles/bench_fig16_train_test_shift.dir/bench_fig16_train_test_shift.cc.o.d"
  "bench_fig16_train_test_shift"
  "bench_fig16_train_test_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_train_test_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
