# Empty compiler generated dependencies file for bench_fig16_train_test_shift.
# This may be replaced when dependencies are built.
