# Empty compiler generated dependencies file for bench_ext_low_crossing.
# This may be replaced when dependencies are built.
