file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_low_crossing.dir/bench_ext_low_crossing.cc.o"
  "CMakeFiles/bench_ext_low_crossing.dir/bench_ext_low_crossing.cc.o.d"
  "bench_ext_low_crossing"
  "bench_ext_low_crossing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_low_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
