# Empty compiler generated dependencies file for bench_theory_vcdim.
# This may be replaced when dependencies are built.
