file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_vcdim.dir/bench_theory_vcdim.cc.o"
  "CMakeFiles/bench_theory_vcdim.dir/bench_theory_vcdim.cc.o.d"
  "bench_theory_vcdim"
  "bench_theory_vcdim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_vcdim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
