file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_rms_vs_complexity.dir/bench_fig09_rms_vs_complexity.cc.o"
  "CMakeFiles/bench_fig09_rms_vs_complexity.dir/bench_fig09_rms_vs_complexity.cc.o.d"
  "bench_fig09_rms_vs_complexity"
  "bench_fig09_rms_vs_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_rms_vs_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
