# Empty dependencies file for bench_fig09_rms_vs_complexity.
# This may be replaced when dependencies are built.
