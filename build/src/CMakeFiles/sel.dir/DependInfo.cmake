
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/avi.cc" "src/CMakeFiles/sel.dir/baselines/avi.cc.o" "gcc" "src/CMakeFiles/sel.dir/baselines/avi.cc.o.d"
  "/root/repo/src/baselines/isomer.cc" "src/CMakeFiles/sel.dir/baselines/isomer.cc.o" "gcc" "src/CMakeFiles/sel.dir/baselines/isomer.cc.o.d"
  "/root/repo/src/baselines/quicksel.cc" "src/CMakeFiles/sel.dir/baselines/quicksel.cc.o" "gcc" "src/CMakeFiles/sel.dir/baselines/quicksel.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/sel.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/sel.dir/common/csv.cc.o.d"
  "/root/repo/src/common/env.cc" "src/CMakeFiles/sel.dir/common/env.cc.o" "gcc" "src/CMakeFiles/sel.dir/common/env.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/sel.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/sel.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/arrangement.cc" "src/CMakeFiles/sel.dir/core/arrangement.cc.o" "gcc" "src/CMakeFiles/sel.dir/core/arrangement.cc.o.d"
  "/root/repo/src/core/gmm.cc" "src/CMakeFiles/sel.dir/core/gmm.cc.o" "gcc" "src/CMakeFiles/sel.dir/core/gmm.cc.o.d"
  "/root/repo/src/core/model.cc" "src/CMakeFiles/sel.dir/core/model.cc.o" "gcc" "src/CMakeFiles/sel.dir/core/model.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/CMakeFiles/sel.dir/core/model_io.cc.o" "gcc" "src/CMakeFiles/sel.dir/core/model_io.cc.o.d"
  "/root/repo/src/core/online.cc" "src/CMakeFiles/sel.dir/core/online.cc.o" "gcc" "src/CMakeFiles/sel.dir/core/online.cc.o.d"
  "/root/repo/src/core/ptshist.cc" "src/CMakeFiles/sel.dir/core/ptshist.cc.o" "gcc" "src/CMakeFiles/sel.dir/core/ptshist.cc.o.d"
  "/root/repo/src/core/quadhist.cc" "src/CMakeFiles/sel.dir/core/quadhist.cc.o" "gcc" "src/CMakeFiles/sel.dir/core/quadhist.cc.o.d"
  "/root/repo/src/core/static_model.cc" "src/CMakeFiles/sel.dir/core/static_model.cc.o" "gcc" "src/CMakeFiles/sel.dir/core/static_model.cc.o.d"
  "/root/repo/src/data/csv_io.cc" "src/CMakeFiles/sel.dir/data/csv_io.cc.o" "gcc" "src/CMakeFiles/sel.dir/data/csv_io.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/sel.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/sel.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/sel.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/sel.dir/data/generators.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/sel.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/sel.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/table_printer.cc" "src/CMakeFiles/sel.dir/eval/table_printer.cc.o" "gcc" "src/CMakeFiles/sel.dir/eval/table_printer.cc.o.d"
  "/root/repo/src/geometry/ball.cc" "src/CMakeFiles/sel.dir/geometry/ball.cc.o" "gcc" "src/CMakeFiles/sel.dir/geometry/ball.cc.o.d"
  "/root/repo/src/geometry/box.cc" "src/CMakeFiles/sel.dir/geometry/box.cc.o" "gcc" "src/CMakeFiles/sel.dir/geometry/box.cc.o.d"
  "/root/repo/src/geometry/halfspace.cc" "src/CMakeFiles/sel.dir/geometry/halfspace.cc.o" "gcc" "src/CMakeFiles/sel.dir/geometry/halfspace.cc.o.d"
  "/root/repo/src/geometry/polynomial.cc" "src/CMakeFiles/sel.dir/geometry/polynomial.cc.o" "gcc" "src/CMakeFiles/sel.dir/geometry/polynomial.cc.o.d"
  "/root/repo/src/geometry/query.cc" "src/CMakeFiles/sel.dir/geometry/query.cc.o" "gcc" "src/CMakeFiles/sel.dir/geometry/query.cc.o.d"
  "/root/repo/src/geometry/sampling.cc" "src/CMakeFiles/sel.dir/geometry/sampling.cc.o" "gcc" "src/CMakeFiles/sel.dir/geometry/sampling.cc.o.d"
  "/root/repo/src/geometry/semialgebraic.cc" "src/CMakeFiles/sel.dir/geometry/semialgebraic.cc.o" "gcc" "src/CMakeFiles/sel.dir/geometry/semialgebraic.cc.o.d"
  "/root/repo/src/geometry/volume.cc" "src/CMakeFiles/sel.dir/geometry/volume.cc.o" "gcc" "src/CMakeFiles/sel.dir/geometry/volume.cc.o.d"
  "/root/repo/src/index/kdtree.cc" "src/CMakeFiles/sel.dir/index/kdtree.cc.o" "gcc" "src/CMakeFiles/sel.dir/index/kdtree.cc.o.d"
  "/root/repo/src/learning/fat_shattering.cc" "src/CMakeFiles/sel.dir/learning/fat_shattering.cc.o" "gcc" "src/CMakeFiles/sel.dir/learning/fat_shattering.cc.o.d"
  "/root/repo/src/learning/low_crossing.cc" "src/CMakeFiles/sel.dir/learning/low_crossing.cc.o" "gcc" "src/CMakeFiles/sel.dir/learning/low_crossing.cc.o.d"
  "/root/repo/src/learning/sample_complexity.cc" "src/CMakeFiles/sel.dir/learning/sample_complexity.cc.o" "gcc" "src/CMakeFiles/sel.dir/learning/sample_complexity.cc.o.d"
  "/root/repo/src/learning/shattering.cc" "src/CMakeFiles/sel.dir/learning/shattering.cc.o" "gcc" "src/CMakeFiles/sel.dir/learning/shattering.cc.o.d"
  "/root/repo/src/learning/vc_dimension.cc" "src/CMakeFiles/sel.dir/learning/vc_dimension.cc.o" "gcc" "src/CMakeFiles/sel.dir/learning/vc_dimension.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/sel.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/sel.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/parser/predicate_parser.cc" "src/CMakeFiles/sel.dir/parser/predicate_parser.cc.o" "gcc" "src/CMakeFiles/sel.dir/parser/predicate_parser.cc.o.d"
  "/root/repo/src/solver/lp.cc" "src/CMakeFiles/sel.dir/solver/lp.cc.o" "gcc" "src/CMakeFiles/sel.dir/solver/lp.cc.o.d"
  "/root/repo/src/solver/nnls.cc" "src/CMakeFiles/sel.dir/solver/nnls.cc.o" "gcc" "src/CMakeFiles/sel.dir/solver/nnls.cc.o.d"
  "/root/repo/src/solver/qp.cc" "src/CMakeFiles/sel.dir/solver/qp.cc.o" "gcc" "src/CMakeFiles/sel.dir/solver/qp.cc.o.d"
  "/root/repo/src/solver/simplex_projection.cc" "src/CMakeFiles/sel.dir/solver/simplex_projection.cc.o" "gcc" "src/CMakeFiles/sel.dir/solver/simplex_projection.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/sel.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/sel.dir/workload/workload.cc.o.d"
  "/root/repo/src/workload/workload_io.cc" "src/CMakeFiles/sel.dir/workload/workload_io.cc.o" "gcc" "src/CMakeFiles/sel.dir/workload/workload_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
