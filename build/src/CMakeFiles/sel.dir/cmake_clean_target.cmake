file(REMOVE_RECURSE
  "libsel.a"
)
