# Empty compiler generated dependencies file for sel.
# This may be replaced when dependencies are built.
