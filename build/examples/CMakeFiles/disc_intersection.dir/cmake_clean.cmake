file(REMOVE_RECURSE
  "CMakeFiles/disc_intersection.dir/disc_intersection.cc.o"
  "CMakeFiles/disc_intersection.dir/disc_intersection.cc.o.d"
  "disc_intersection"
  "disc_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
