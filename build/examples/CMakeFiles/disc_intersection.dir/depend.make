# Empty dependencies file for disc_intersection.
# This may be replaced when dependencies are built.
