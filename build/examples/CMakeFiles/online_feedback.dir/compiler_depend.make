# Empty compiler generated dependencies file for online_feedback.
# This may be replaced when dependencies are built.
