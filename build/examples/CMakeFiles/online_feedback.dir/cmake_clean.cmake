file(REMOVE_RECURSE
  "CMakeFiles/online_feedback.dir/online_feedback.cc.o"
  "CMakeFiles/online_feedback.dir/online_feedback.cc.o.d"
  "online_feedback"
  "online_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
