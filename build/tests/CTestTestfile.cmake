# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/volume_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/kdtree_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/quadhist_test[1]_include.cmake")
include("/root/repo/build/tests/ptshist_test[1]_include.cmake")
include("/root/repo/build/tests/arrangement_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/learning_theory_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/semialgebraic_test[1]_include.cmake")
include("/root/repo/build/tests/gmm_test[1]_include.cmake")
include("/root/repo/build/tests/low_crossing_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/online_test[1]_include.cmake")
include("/root/repo/build/tests/avi_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/workload_io_test[1]_include.cmake")
include("/root/repo/build/tests/polynomial_property_test[1]_include.cmake")
include("/root/repo/build/tests/sample_complexity_test[1]_include.cmake")
include("/root/repo/build/tests/model_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/lp_property_test[1]_include.cmake")
include("/root/repo/build/tests/semialgebraic_models_test[1]_include.cmake")
