file(REMOVE_RECURSE
  "CMakeFiles/polynomial_property_test.dir/polynomial_property_test.cc.o"
  "CMakeFiles/polynomial_property_test.dir/polynomial_property_test.cc.o.d"
  "polynomial_property_test"
  "polynomial_property_test.pdb"
  "polynomial_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polynomial_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
