# Empty dependencies file for ptshist_test.
# This may be replaced when dependencies are built.
