file(REMOVE_RECURSE
  "CMakeFiles/ptshist_test.dir/ptshist_test.cc.o"
  "CMakeFiles/ptshist_test.dir/ptshist_test.cc.o.d"
  "ptshist_test"
  "ptshist_test.pdb"
  "ptshist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptshist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
