file(REMOVE_RECURSE
  "CMakeFiles/sample_complexity_test.dir/sample_complexity_test.cc.o"
  "CMakeFiles/sample_complexity_test.dir/sample_complexity_test.cc.o.d"
  "sample_complexity_test"
  "sample_complexity_test.pdb"
  "sample_complexity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_complexity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
