# Empty dependencies file for sample_complexity_test.
# This may be replaced when dependencies are built.
