# Empty dependencies file for avi_test.
# This may be replaced when dependencies are built.
