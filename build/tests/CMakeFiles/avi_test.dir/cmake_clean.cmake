file(REMOVE_RECURSE
  "CMakeFiles/avi_test.dir/avi_test.cc.o"
  "CMakeFiles/avi_test.dir/avi_test.cc.o.d"
  "avi_test"
  "avi_test.pdb"
  "avi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
