file(REMOVE_RECURSE
  "CMakeFiles/low_crossing_test.dir/low_crossing_test.cc.o"
  "CMakeFiles/low_crossing_test.dir/low_crossing_test.cc.o.d"
  "low_crossing_test"
  "low_crossing_test.pdb"
  "low_crossing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_crossing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
