# Empty compiler generated dependencies file for low_crossing_test.
# This may be replaced when dependencies are built.
