# Empty compiler generated dependencies file for semialgebraic_models_test.
# This may be replaced when dependencies are built.
