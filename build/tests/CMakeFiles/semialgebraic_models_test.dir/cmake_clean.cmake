file(REMOVE_RECURSE
  "CMakeFiles/semialgebraic_models_test.dir/semialgebraic_models_test.cc.o"
  "CMakeFiles/semialgebraic_models_test.dir/semialgebraic_models_test.cc.o.d"
  "semialgebraic_models_test"
  "semialgebraic_models_test.pdb"
  "semialgebraic_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semialgebraic_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
