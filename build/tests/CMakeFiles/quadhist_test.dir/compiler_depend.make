# Empty compiler generated dependencies file for quadhist_test.
# This may be replaced when dependencies are built.
