file(REMOVE_RECURSE
  "CMakeFiles/quadhist_test.dir/quadhist_test.cc.o"
  "CMakeFiles/quadhist_test.dir/quadhist_test.cc.o.d"
  "quadhist_test"
  "quadhist_test.pdb"
  "quadhist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadhist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
