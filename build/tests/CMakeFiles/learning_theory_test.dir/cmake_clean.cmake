file(REMOVE_RECURSE
  "CMakeFiles/learning_theory_test.dir/learning_theory_test.cc.o"
  "CMakeFiles/learning_theory_test.dir/learning_theory_test.cc.o.d"
  "learning_theory_test"
  "learning_theory_test.pdb"
  "learning_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learning_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
