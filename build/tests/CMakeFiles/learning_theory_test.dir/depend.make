# Empty dependencies file for learning_theory_test.
# This may be replaced when dependencies are built.
