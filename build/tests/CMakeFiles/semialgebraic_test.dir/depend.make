# Empty dependencies file for semialgebraic_test.
# This may be replaced when dependencies are built.
