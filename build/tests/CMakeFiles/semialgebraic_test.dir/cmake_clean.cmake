file(REMOVE_RECURSE
  "CMakeFiles/semialgebraic_test.dir/semialgebraic_test.cc.o"
  "CMakeFiles/semialgebraic_test.dir/semialgebraic_test.cc.o.d"
  "semialgebraic_test"
  "semialgebraic_test.pdb"
  "semialgebraic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semialgebraic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
