file(REMOVE_RECURSE
  "CMakeFiles/model_matrix_test.dir/model_matrix_test.cc.o"
  "CMakeFiles/model_matrix_test.dir/model_matrix_test.cc.o.d"
  "model_matrix_test"
  "model_matrix_test.pdb"
  "model_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
