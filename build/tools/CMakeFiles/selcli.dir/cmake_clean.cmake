file(REMOVE_RECURSE
  "CMakeFiles/selcli.dir/selcli.cc.o"
  "CMakeFiles/selcli.dir/selcli.cc.o.d"
  "selcli"
  "selcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
