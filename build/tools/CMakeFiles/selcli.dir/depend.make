# Empty dependencies file for selcli.
# This may be replaced when dependencies are built.
